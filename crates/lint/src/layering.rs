//! Manifest-level rules: crate layering (LAYER-001) and mandatory
//! `#![forbid(unsafe_code)]` crate roots (META-001).

use std::path::Path;

use crate::config::LintConfig;
use crate::lexer;
use crate::rules::find_seq;
use crate::Finding;

/// A parsed (just enough) `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Repo-relative path of the manifest.
    pub path: String,
    /// `package.name`, if present (the virtual workspace table has none).
    pub name: Option<String>,
    /// `[dependencies]` entries as `(line, dep_name)`.
    pub deps: Vec<(usize, String)>,
}

/// Extracts the package name and `[dependencies]` from manifest text.
/// Line-based: good enough for this workspace's hand-written manifests.
pub fn parse_manifest(path: &str, text: &str) -> Manifest {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if section == "package" && key == "name" {
                name = Some(value.trim().trim_matches('"').to_string());
            }
            if section == "dependencies" {
                deps.push((idx + 1, key.trim_matches('"').to_string()));
            }
        }
    }
    Manifest {
        path: path.to_string(),
        name,
        deps,
    }
}

/// LAYER-001: every crate's `[dependencies]` must match the layering
/// declared in `lint.toml`. Two failure modes:
///
/// * an `ss-*` dependency not in the crate's declared layer (e.g.
///   `ss-os` reaching for `ss-nvm` directly), and
/// * any dependency on a crate outside the workspace at all — the
///   workspace is zero-dependency by policy (offline builds, no
///   supply-chain surface), so an external crate is a layering
///   violation of the whole workspace, not a version question.
pub fn check_layering(manifest: &Manifest, config: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(name) = &manifest.name else {
        return findings;
    };
    let Some(allowed) = config.layers.get(name) else {
        findings.push(Finding::new(
            &manifest.path,
            1,
            "LAYER-001",
            format!("crate {name} has no [layers.{name}] entry in lint.toml"),
        ));
        return findings;
    };
    for (line, dep) in &manifest.deps {
        if !dep.starts_with("ss-") && dep != "silent-shredder" {
            findings.push(Finding::new(
                &manifest.path,
                *line,
                "LAYER-001",
                format!("external dependency {dep:?}: the workspace is zero-dependency by policy"),
            ));
        } else if !allowed.iter().any(|a| a == dep) {
            findings.push(Finding::new(
                &manifest.path,
                *line,
                "LAYER-001",
                format!("{name} may not depend on {dep} (not in its declared layer)"),
            ));
        }
    }
    findings
}

/// META-001: every crate root must carry `#![forbid(unsafe_code)]`.
/// `#![deny(unsafe_code)]` is tolerated only with an allowlist entry in
/// `lint.toml` documenting the exception.
pub fn check_crate_root(rel_path: &str, root_file: &Path, config: &LintConfig) -> Vec<Finding> {
    let Ok(text) = std::fs::read_to_string(root_file) else {
        return vec![Finding::new(
            rel_path,
            1,
            "META-001",
            "crate root file is unreadable",
        )];
    };
    let scrubbed = lexer::scrub(&text);
    let mut saw_deny = false;
    for ln in 1..=scrubbed.lines.len() {
        let toks = scrubbed.tokens(ln);
        if find_seq(
            &toks,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
        .is_some()
        {
            return Vec::new();
        }
        if find_seq(
            &toks,
            &["#", "!", "[", "deny", "(", "unsafe_code", ")", "]"],
        )
        .is_some()
        {
            saw_deny = true;
        }
    }
    if saw_deny && config.allows("META-001", rel_path) {
        return Vec::new();
    }
    vec![Finding::new(
        rel_path,
        1,
        "META-001",
        if saw_deny {
            "crate root denies (not forbids) unsafe_code without a lint.toml exception"
        } else {
            "crate root is missing #![forbid(unsafe_code)]"
        },
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn layer_cfg() -> LintConfig {
        LintConfig::parse(
            "[layers.ss-os]\ndeps = [\"ss-common\"]\n[layers.ss-core]\ndeps = [\"ss-common\", \"ss-nvm\"]\n",
        )
        .expect("config parses")
    }

    #[test]
    fn manifest_parse_extracts_name_and_deps() {
        let m = parse_manifest(
            "crates/os/Cargo.toml",
            "[package]\nname = \"ss-os\"\n\n[dependencies]\nss-common.workspace = true\n",
        );
        assert_eq!(m.name.as_deref(), Some("ss-os"));
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].1, "ss-common.workspace");
    }

    #[test]
    fn dotted_workspace_dep_is_normalised() {
        // `ss-common.workspace = true` must count as a dep on ss-common.
        let m = parse_manifest(
            "x/Cargo.toml",
            "[package]\nname = \"ss-os\"\n[dependencies]\nss-common.workspace = true\n",
        );
        let findings = check_layering(&normalise(m), &layer_cfg());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_dep_is_flagged() {
        let m = parse_manifest(
            "x/Cargo.toml",
            "[package]\nname = \"ss-os\"\n[dependencies]\nss-nvm.workspace = true\n",
        );
        let findings = check_layering(&normalise(m), &layer_cfg());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("may not depend on ss-nvm"));
    }

    #[test]
    fn external_dep_is_flagged() {
        let m = parse_manifest(
            "x/Cargo.toml",
            "[package]\nname = \"ss-core\"\n[dependencies]\nserde = \"1\"\n",
        );
        let findings = check_layering(&normalise(m), &layer_cfg());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("zero-dependency"));
    }

    #[test]
    fn missing_layer_entry_is_flagged() {
        let m = parse_manifest("x/Cargo.toml", "[package]\nname = \"ss-new\"\n");
        let findings = check_layering(&normalise(m), &layer_cfg());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no [layers.ss-new] entry"));
    }

    fn normalise(m: Manifest) -> Manifest {
        crate::normalise_manifest(m)
    }
}
