//! `ss-lint` — a hand-rolled workspace static analyzer.
//!
//! The simulator's headline guarantees are *invariants*, not just test
//! outcomes: byte-identical faultsweep reports across runs, and no path
//! that surfaces pre-shred plaintext. This crate checks the source for
//! the coding rules those invariants rest on, at CI time, on every
//! diff:
//!
//! | rule      | what it rejects |
//! |-----------|-----------------|
//! | DET-001   | `HashMap`/`HashSet` (randomized iteration order) |
//! | DET-002   | wall-clock / OS-environment inputs (`Instant::now`, `SystemTime`, `std::env`) |
//! | DET-003   | RNGs other than `ss_common::rng::DetRng` |
//! | SEC-001   | `unwrap()`/`expect()`/`panic!` in `ss-core` non-test code |
//! | SEC-002   | raw `ss-nvm` device write APIs referenced outside `ss-core` |
//! | LAYER-001 | crate dependencies outside the declared layering DAG |
//! | META-001  | crate roots missing `#![forbid(unsafe_code)]` |
//!
//! Escape hatches: a `// lint:allow(RULE-ID)` comment on (or directly
//! above) the offending line, a `// lint:allow-file(RULE-ID)` comment
//! anywhere in the file, or a `[[allow]]` entry in the workspace
//! `lint.toml` (which also declares the LAYER-001 DAG). See `LINTS.md`
//! for the full catalog with rationale.
//!
//! Zero dependencies by design: the lexer strips comments and string
//! literals by hand (no `syn`), so the workspace stays fully offline.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

pub mod config;
pub mod layering;
pub mod lexer;
pub mod rules;

pub use config::LintConfig;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule ID (`DET-001`, …).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        path: impl Into<String>,
        line: usize,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            path: path.into(),
            line,
            rule: rule.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Checks the whole workspace rooted at `root` (the directory holding
/// `lint.toml`). Findings come back sorted by `(path, line, rule)`.
///
/// # Errors
///
/// Returns a message when `lint.toml` is missing/invalid or the source
/// tree cannot be read.
pub fn check_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let config = load_config(root)?;
    let files = collect_sources(root)?;
    check_files(root, &config, &files)
}

/// Loads and parses `<root>/lint.toml`.
///
/// # Errors
///
/// Returns a message when the file is missing or malformed.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    LintConfig::parse(&text)
}

/// Checks an explicit set of files (paths relative to `root`, or
/// absolute under it). `Cargo.toml`s get the manifest rules; `.rs`
/// files get the source rules; crate roots additionally get META-001.
///
/// # Errors
///
/// Returns a message when a file cannot be read.
pub fn check_files(
    root: &Path,
    config: &LintConfig,
    files: &[PathBuf],
) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in files {
        let abs = if file.is_absolute() {
            file.clone()
        } else {
            root.join(file)
        };
        let rel = rel_path(root, &abs);
        if rel.ends_with("Cargo.toml") {
            let text = std::fs::read_to_string(&abs)
                .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
            let manifest = normalise_manifest(layering::parse_manifest(&rel, &text));
            findings.extend(layering::check_layering(&manifest, config));
            // META-001 runs per crate root, keyed off its manifest.
            if manifest.name.is_some() {
                if let Some((root_rel, root_abs)) = crate_root_file(&abs, &rel) {
                    findings.extend(layering::check_crate_root(&root_rel, &root_abs, config));
                }
            }
            continue;
        }
        if !rel.ends_with(".rs") {
            continue;
        }
        let text = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let scrubbed = lexer::scrub(&text);
        let ctx = rules::FileContext {
            path: &rel,
            scrubbed: &scrubbed,
            first_test_line: rules::first_test_line(&scrubbed),
        };
        findings.extend(
            rules::check_file(&ctx)
                .into_iter()
                .filter(|f| !config.allows(&f.rule, &f.path)),
        );
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Strips the `.workspace` suffix of dotted dependency keys
/// (`ss-common.workspace = true` declares a dep on `ss-common`).
pub fn normalise_manifest(mut m: layering::Manifest) -> layering::Manifest {
    for (_, dep) in &mut m.deps {
        if let Some(base) = dep.strip_suffix(".workspace") {
            *dep = base.to_string();
        }
    }
    m
}

/// The crate-root source file for a manifest: `src/lib.rs`, else
/// `src/main.rs`.
fn crate_root_file(manifest_abs: &Path, manifest_rel: &str) -> Option<(String, PathBuf)> {
    let dir = manifest_abs.parent()?;
    let rel_dir = manifest_rel.strip_suffix("Cargo.toml")?;
    for candidate in ["src/lib.rs", "src/main.rs"] {
        let abs = dir.join(candidate);
        if abs.is_file() {
            return Some((format!("{rel_dir}{candidate}"), abs));
        }
    }
    None
}

/// Collects every lintable file under `root`: all `.rs` sources plus
/// all `Cargo.toml`s, skipping build output, VCS metadata, and the lint
/// fixtures (which violate rules on purpose). Sorted for deterministic
/// reports.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative path with `/` separators.
fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Renders findings as the canonical `file:line RULE-ID message` lines.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array with a fixed key order (the same
/// hand-rolled, byte-stable style as `faultsweep --json`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{comma}\n",
            json_escape(&f.path),
            f.line,
            json_escape(&f.rule),
            json_escape(&f.message)
        ));
    }
    out.push_str("]\n");
    out
}

/// Escapes `s` for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_by_path_line_rule() {
        let mut v = [
            Finding::new("b.rs", 1, "DET-001", "x"),
            Finding::new("a.rs", 9, "SEC-001", "x"),
            Finding::new("a.rs", 9, "DET-001", "x"),
        ];
        v.sort();
        assert_eq!(v[0].path, "a.rs");
        assert_eq!(v[0].rule, "DET-001");
        assert_eq!(v[2].path, "b.rs");
    }

    #[test]
    fn text_rendering_is_canonical() {
        let f = Finding::new("crates/os/src/kernel.rs", 12, "DET-001", "HashMap bad");
        assert_eq!(
            f.to_string(),
            "crates/os/src/kernel.rs:12 DET-001 HashMap bad"
        );
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let findings = vec![Finding::new("a.rs", 1, "DET-001", "say \"hi\"")];
        let json = render_json(&findings);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
    }
}
