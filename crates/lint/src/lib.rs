//! `ss-lint` — a hand-rolled workspace static analyzer.
//!
//! The simulator's headline guarantees are *invariants*, not just test
//! outcomes: byte-identical faultsweep reports across runs, and no path
//! that surfaces pre-shred plaintext. This crate checks the source for
//! the coding rules those invariants rest on, at CI time, on every
//! diff:
//!
//! | rule        | what it rejects |
//! |-------------|-----------------|
//! | DET-001     | `HashMap`/`HashSet` (randomized iteration order) |
//! | DET-002     | wall-clock / OS-environment inputs (`Instant::now`, `SystemTime`, `std::env`) |
//! | DET-003     | RNGs other than `ss_common::rng::DetRng` |
//! | SEC-001     | `unwrap()`/`expect()`/`panic!` in `ss-core` non-test code |
//! | SEC-002     | raw `ss-nvm` device write APIs referenced outside `ss-core` |
//! | SEC-003     | panics reachable from `MemoryController`'s public API (call graph) |
//! | PERSIST-001 | `ss-core` device writes that bypass the `persist_line` choke point |
//! | CRYPTO-001  | `ss-crypto` decrypt/keystream surfaces invoked outside `ss-core` |
//! | LAYER-001   | crate dependencies outside the declared layering DAG |
//! | LAYER-002   | `ss-crypto` share primitives re-defined elsewhere or invoked outside `ss-core` |
//! | META-001    | crate roots missing `#![forbid(unsafe_code)]` |
//! | META-002    | escape hatches (`lint:allow*`, `[[allow]]`) that suppress nothing |
//!
//! The source-level rules match token sequences per line; the call-graph
//! rules (SEC-003/PERSIST-001/CRYPTO-001) run on an approximate
//! workspace call graph built by [`items`] + [`callgraph`].
//!
//! Escape hatches: a `// lint:allow(RULE-ID)` comment on (or directly
//! above) the offending line, a `// lint:allow-file(RULE-ID)` comment
//! anywhere in the file, or a `[[allow]]` entry in the workspace
//! `lint.toml` (which also declares the LAYER-001 DAG). See `LINTS.md`
//! for the full catalog with rationale.
//!
//! Zero dependencies by design: the lexer strips comments and string
//! literals by hand (no `syn`), so the workspace stays fully offline.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod config;
pub mod items;
pub mod layering;
pub mod lexer;
pub mod rules;

pub use config::LintConfig;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule ID (`DET-001`, …).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        path: impl Into<String>,
        line: usize,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            path: path.into(),
            line,
            rule: rule.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Checks the whole workspace rooted at `root` (the directory holding
/// `lint.toml`). Findings come back sorted by `(path, line, rule)`.
///
/// # Errors
///
/// Returns a message when `lint.toml` is missing/invalid or the source
/// tree cannot be read.
pub fn check_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let config = load_config(root)?;
    let files = collect_sources(root)?;
    // The full tree is in view, so stale escapes are decidable: audit
    // them (META-002).
    run_check(root, &config, &files, true)
}

/// Loads and parses `<root>/lint.toml`.
///
/// # Errors
///
/// Returns a message when the file is missing or malformed.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    LintConfig::parse(&text)
}

/// Checks an explicit set of files (paths relative to `root`, or
/// absolute under it). `Cargo.toml`s get the manifest rules; `.rs`
/// files get the source rules plus the call-graph rules over the given
/// set; crate roots additionally get META-001. The stale-escape audit
/// (META-002) stays off: with only part of the tree in view, "this
/// escape suppresses nothing" is not decidable.
///
/// # Errors
///
/// Returns a message when a file cannot be read.
pub fn check_files(
    root: &Path,
    config: &LintConfig,
    files: &[PathBuf],
) -> Result<Vec<Finding>, String> {
    run_check(root, config, files, false)
}

/// The shared checking pipeline. Pass 1 scrubs each file, runs the
/// per-file rules unfiltered, and collects `fn` items; pass 2 builds
/// the call graph and runs the graph rules; then every escape hatch is
/// applied centrally — tracking which directives and `[[allow]]`
/// entries actually suppressed something, so `audit_allows` can turn
/// the unused ones into META-002 findings.
fn run_check(
    root: &Path,
    config: &LintConfig,
    files: &[PathBuf],
    audit_allows: bool,
) -> Result<Vec<Finding>, String> {
    let mut raw = Vec::new();
    let mut sources: Vec<(String, lexer::Scrubbed)> = Vec::new();
    let mut fns = Vec::new();
    for file in files {
        // Workspace walks hand back paths already carrying the root
        // prefix; explicit file lists are root-relative. Join only in
        // the latter case so a relative `--root` is not doubled.
        let abs = if file.is_absolute() || file.starts_with(root) {
            file.clone()
        } else {
            root.join(file)
        };
        let rel = rel_path(root, &abs);
        if rel.ends_with("Cargo.toml") {
            let text = std::fs::read_to_string(&abs)
                .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
            let manifest = normalise_manifest(layering::parse_manifest(&rel, &text));
            raw.extend(layering::check_layering(&manifest, config));
            // META-001 runs per crate root, keyed off its manifest.
            if manifest.name.is_some() {
                if let Some((root_rel, root_abs)) = crate_root_file(&abs, &rel) {
                    raw.extend(layering::check_crate_root(&root_rel, &root_abs, config));
                }
            }
            continue;
        }
        if !rel.ends_with(".rs") {
            continue;
        }
        let text = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let scrubbed = lexer::scrub(&text);
        let first_test = rules::first_test_line(&scrubbed);
        let ctx = rules::FileContext {
            path: &rel,
            scrubbed: &scrubbed,
            first_test_line: first_test,
        };
        raw.extend(rules::check_file(&ctx));
        fns.extend(items::parse_items(&rel, &scrubbed, first_test));
        sources.push((rel, scrubbed));
    }
    let graph = callgraph::CallGraph::build(fns);
    raw.extend(rules::check_graph(&graph));
    raw.sort();
    raw.dedup();

    // Central escape filtering. Every escape that matches a raw finding
    // is marked used (even when another escape already suppressed it),
    // so META-002 only flags escapes that do no work at all.
    let mut entry_used = vec![false; config.allows.len()];
    let mut directive_used: Vec<Vec<bool>> = sources
        .iter()
        .map(|(_, s)| vec![false; s.directives.len()])
        .collect();
    let by_path: std::collections::BTreeMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| (rel.as_str(), i))
        .collect();
    let mut findings = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for (i, a) in config.allows.iter().enumerate() {
            if a.rule == f.rule
                && (a.path == f.path || (a.path.ends_with('/') && f.path.starts_with(&a.path)))
            {
                entry_used[i] = true;
                suppressed = true;
            }
        }
        if let Some(&src) = by_path.get(f.path.as_str()) {
            for (j, d) in sources[src].1.directives.iter().enumerate() {
                if d.rule == f.rule && (d.file_wide || d.applies_to == f.line) {
                    directive_used[src][j] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    if audit_allows {
        for (src, (rel, scrubbed)) in sources.iter().enumerate() {
            for (j, d) in scrubbed.directives.iter().enumerate() {
                if directive_used[src][j] {
                    continue;
                }
                let kind = if d.file_wide {
                    "lint:allow-file"
                } else {
                    "lint:allow"
                };
                let finding = Finding::new(
                    rel,
                    d.line,
                    "META-002",
                    format!("stale {kind}({}) escape: it suppresses no findings", d.rule),
                );
                // META-002 itself is escapable only via lint.toml — a
                // line directive excusing a stale directive would be
                // stale in turn.
                if !config.allows(&finding.rule, &finding.path) {
                    findings.push(finding);
                }
            }
        }
        for (i, a) in config.allows.iter().enumerate() {
            // META-002 entries are the audit's own escape hatch, not
            // subjects of it.
            if entry_used[i] || a.rule == "META-002" {
                continue;
            }
            let finding = Finding::new(
                "lint.toml",
                a.line,
                "META-002",
                format!(
                    "stale [[allow]] entry: {} for {:?} suppresses no findings",
                    a.rule, a.path
                ),
            );
            if !config.allows(&finding.rule, &finding.path) {
                findings.push(finding);
            }
        }
        findings.sort();
        findings.dedup();
    }
    Ok(findings)
}

/// Strips the `.workspace` suffix of dotted dependency keys
/// (`ss-common.workspace = true` declares a dep on `ss-common`).
pub fn normalise_manifest(mut m: layering::Manifest) -> layering::Manifest {
    for (_, dep) in &mut m.deps {
        if let Some(base) = dep.strip_suffix(".workspace") {
            *dep = base.to_string();
        }
    }
    m
}

/// The crate-root source file for a manifest: `src/lib.rs`, else
/// `src/main.rs`.
fn crate_root_file(manifest_abs: &Path, manifest_rel: &str) -> Option<(String, PathBuf)> {
    let dir = manifest_abs.parent()?;
    let rel_dir = manifest_rel.strip_suffix("Cargo.toml")?;
    for candidate in ["src/lib.rs", "src/main.rs"] {
        let abs = dir.join(candidate);
        if abs.is_file() {
            return Some((format!("{rel_dir}{candidate}"), abs));
        }
    }
    None
}

/// Collects every lintable file under `root`: all `.rs` sources plus
/// all `Cargo.toml`s, skipping build output, VCS metadata, and the lint
/// fixtures (which violate rules on purpose). Sorted for deterministic
/// reports.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative path with `/` separators.
fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Renders findings as the canonical `file:line RULE-ID message` lines.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array with a fixed key order (the same
/// hand-rolled, byte-stable style as `faultsweep --json`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{comma}\n",
            json_escape(&f.path),
            f.line,
            json_escape(&f.rule),
            json_escape(&f.message)
        ));
    }
    out.push_str("]\n");
    out
}

/// Escapes `s` for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_by_path_line_rule() {
        let mut v = [
            Finding::new("b.rs", 1, "DET-001", "x"),
            Finding::new("a.rs", 9, "SEC-001", "x"),
            Finding::new("a.rs", 9, "DET-001", "x"),
        ];
        v.sort();
        assert_eq!(v[0].path, "a.rs");
        assert_eq!(v[0].rule, "DET-001");
        assert_eq!(v[2].path, "b.rs");
    }

    #[test]
    fn text_rendering_is_canonical() {
        let f = Finding::new("crates/os/src/kernel.rs", 12, "DET-001", "HashMap bad");
        assert_eq!(
            f.to_string(),
            "crates/os/src/kernel.rs:12 DET-001 HashMap bad"
        );
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let findings = vec![Finding::new("a.rs", 1, "DET-001", "say \"hi\"")];
        let json = render_json(&findings);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
    }
}
