//! The rule catalog.
//!
//! Each rule scans the scrubbed token stream of one source line (see
//! [`crate::lexer`]) and yields findings. Scoping (which files a rule
//! applies to) lives here too, driven by repo-relative paths; the
//! manifest-level rules (LAYER-001, META-001) live in
//! [`crate::layering`]. Rationale and escape hatches for every rule are
//! documented in `LINTS.md`.

use crate::lexer::{Scrubbed, Token};
use crate::Finding;

/// Everything a source-level rule needs to know about one file.
pub struct FileContext<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    /// Scrubbed source.
    pub scrubbed: &'a Scrubbed,
    /// 1-indexed line of the first `#[cfg(test)]` in the file, if any.
    /// By workspace convention unit-test modules sit at the end of the
    /// file, so rules that exempt test code skip everything from here.
    pub first_test_line: Option<usize>,
}

impl FileContext<'_> {
    /// Whether 1-indexed `line` is inside the trailing test module.
    fn in_test_code(&self, line: usize) -> bool {
        self.first_test_line.is_some_and(|t| line >= t)
    }

    /// Whether this file is itself a test/bench target (integration
    /// tests, benches, fixtures): determinism rules still apply there,
    /// but panic-freedom rules do not.
    fn is_test_target(&self) -> bool {
        self.path.contains("/tests/") || self.path.starts_with("tests/")
    }
}

/// Finds the first `#[cfg(test)]` attribute line in a scrubbed file.
pub fn first_test_line(scrubbed: &Scrubbed) -> Option<usize> {
    (1..=scrubbed.lines.len()).find(|&ln| {
        let toks = scrubbed.tokens(ln);
        find_seq(&toks, &["#", "[", "cfg", "(", "test", ")", "]"]).is_some()
    })
}

/// Runs every source-level rule over `ctx`, honouring `// lint:allow`
/// escapes. Config-level allowlisting is applied by the caller.
pub fn check_file(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for ln in 1..=ctx.scrubbed.lines.len() {
        let toks = ctx.scrubbed.tokens(ln);
        if toks.is_empty() {
            continue;
        }
        det_001(ctx, ln, &toks, &mut findings);
        det_002(ctx, ln, &toks, &mut findings);
        det_003(ctx, ln, &toks, &mut findings);
        det_004(ctx, ln, &toks, &mut findings);
        sec_001(ctx, ln, &toks, &mut findings);
        sec_002(ctx, ln, &toks, &mut findings);
    }
    findings.retain(|f| !ctx.scrubbed.allows(f.line, &f.rule));
    findings
}

/// DET-001: no `HashMap`/`HashSet` anywhere in the workspace. Their
/// iteration order is randomized per process (`RandomState`), which
/// breaks byte-identical reports and makes tie-breaks (e.g. max-wear
/// scans) nondeterministic across runs.
fn det_001(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    for name in ["HashMap", "HashSet"] {
        if toks.iter().any(|t| t.is_ident(name)) {
            out.push(Finding::new(
                ctx.path,
                ln,
                "DET-001",
                format!("{name} iterates in random order; use BTreeMap/BTreeSet"),
            ));
        }
    }
}

/// DET-002: no wall-clock or OS-environment inputs. Simulated time is
/// `ss_common::time::Cycles`; anything observable must be a pure
/// function of the configuration and seed.
fn det_002(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    let mut hit = |what: &str| {
        out.push(Finding::new(
            ctx.path,
            ln,
            "DET-002",
            format!("{what} injects wall-clock/OS state into a deterministic path"),
        ));
    };
    if find_seq(toks, &["Instant", "::", "now"]).is_some() {
        hit("Instant::now");
    }
    if toks.iter().any(|t| t.is_ident("SystemTime")) {
        hit("SystemTime");
    }
    if find_seq(toks, &["std", "::", "env"]).is_some() || find_seq(toks, &["env", "::"]).is_some() {
        hit("std::env");
    }
}

/// DET-003: all randomness flows through `ss_common::rng::DetRng`.
/// External RNGs (the `rand` crate family, hasher entropy) either pull
/// OS entropy or change streams across versions.
fn det_003(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "StdRng",
        "SmallRng",
        "ThreadRng",
        "OsRng",
        "getrandom",
        "from_entropy",
        "RandomState",
        "DefaultHasher",
    ];
    for name in BANNED {
        if toks.iter().any(|t| t.is_ident(name)) {
            out.push(Finding::new(
                ctx.path,
                ln,
                "DET-003",
                format!("{name}: construct RNGs via ss_common::rng::DetRng only"),
            ));
        }
    }
    if find_seq(toks, &["rand", "::"]).is_some() {
        out.push(Finding::new(
            ctx.path,
            ln,
            "DET-003",
            "the rand crate is banned: construct RNGs via ss_common::rng::DetRng".to_string(),
        ));
    }
}

/// DET-004: no floating point in cycle, fault, or energy accounting.
/// `f64` rounding depends on evaluation order and (historically)
/// platform FMA contraction; every quantity on these paths is exact in
/// integers (picoseconds, picojoules, 2^53-scaled probability
/// thresholds), so a float is either dead weight or a reintroduced
/// nondeterminism hazard. Scoped to the accounting files; the one-time
/// probability→threshold conversion at construction carries explicit
/// `lint:allow(DET-004)` escapes. Trailing test modules are exempt
/// (tests may compare against float reference implementations).
fn det_004(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    const CYCLE_ACCOUNTING_FILES: &[&str] = &[
        "crates/common/src/time.rs",
        "crates/core/src/channel.rs",
        "crates/core/src/shard.rs",
        "crates/nvm/src/device.rs",
        "crates/nvm/src/timing.rs",
    ];
    if !CYCLE_ACCOUNTING_FILES.contains(&ctx.path) || ctx.in_test_code(ln) {
        return;
    }
    for name in ["f64", "f32"] {
        if toks.iter().any(|t| t.is_ident(name)) {
            out.push(Finding::new(
                ctx.path,
                ln,
                "DET-004",
                format!("{name} in cycle/fault/energy accounting; use integer fixed point (Picos, picojoules, DetRng thresholds)"),
            ));
        }
    }
}

/// SEC-001: no `unwrap()`/`expect()`/`panic!` in `ss-core` non-test
/// code. The controller and heal paths sit between every workload and
/// the device; a panic there aborts the simulated machine instead of
/// surfacing a typed `ss_common::error::Error` the harness can classify
/// (detected vs corrupted). Test modules are exempt.
fn sec_001(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/core/src/") || ctx.in_test_code(ln) || ctx.is_test_target() {
        return;
    }
    for (name, suffix) in [("unwrap", '('), ("expect", '('), ("panic", '!')] {
        let mut i = 0;
        while let Some(pos) = toks[i..].iter().position(|t| t.is_ident(name)) {
            let at = i + pos;
            if toks.get(at + 1).is_some_and(|t| t.is_punct(suffix)) {
                out.push(Finding::new(
                    ctx.path,
                    ln,
                    "SEC-001",
                    format!("{name} on a controller/heal path; propagate ss_common::error instead"),
                ));
            }
            i = at + 1;
        }
    }
}

/// SEC-002: the raw `ss-nvm` device write surface (`NvmDevice`,
/// `write_line`, `tamper`, `flip_bit`, `fail_line`,
/// `inject_read_error`) may only be referenced from `ss-core` (and
/// `ss-nvm` itself). Everything else must go through the controller so
/// no plaintext can bypass the encrypt path, and — load-bearing for the
/// paper's shredding — so no write can land without its minor-counter
/// bump (see DESIGN.md: a stale minor of zero turns zero-fill reads
/// into array reads of stale ciphertext).
fn sec_002(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    if ctx.path.starts_with("crates/core/src/") || ctx.path.starts_with("crates/nvm/src/") {
        return;
    }
    if toks.iter().any(|t| t.is_ident("NvmDevice")) {
        out.push(Finding::new(
            ctx.path,
            ln,
            "SEC-002",
            "NvmDevice referenced outside ss-core: raw device access bypasses the encrypt/shred path",
        ));
    }
    const WRITE_APIS: &[&str] = &[
        "write_line",
        "tamper",
        "flip_bit",
        "fail_line",
        "inject_read_error",
    ];
    for name in WRITE_APIS {
        let mut i = 0;
        while let Some(pos) = toks[i..].iter().position(|t| t.is_ident(name)) {
            let at = i + pos;
            if toks.get(at + 1).is_some_and(|t| t.is_punct('(')) {
                out.push(Finding::new(
                    ctx.path,
                    ln,
                    "SEC-002",
                    format!("raw device API {name}() referenced outside ss-core"),
                ));
            }
            i = at + 1;
        }
    }
}

/// Finds `pattern` (idents and one-char puncts; `"::"` spelled as two
/// `":"` entries is also accepted) as a contiguous token sequence.
/// Multi-char pattern entries that are not identifiers are expanded to
/// their characters.
pub fn find_seq(toks: &[Token], pattern: &[&str]) -> Option<usize> {
    let want: Vec<Token> = pattern
        .iter()
        .flat_map(|p| {
            if p.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                vec![Token::Ident((*p).to_string())]
            } else {
                p.chars().map(Token::Punct).collect()
            }
        })
        .collect();
    if want.is_empty() || toks.len() < want.len() {
        return None;
    }
    (0..=toks.len() - want.len()).find(|&i| toks[i..i + want.len()] == want[..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn ctx<'a>(path: &'a str, scrubbed: &'a Scrubbed) -> FileContext<'a> {
        FileContext {
            path,
            scrubbed,
            first_test_line: first_test_line(scrubbed),
        }
    }

    fn rules_on(path: &str, src: &str) -> Vec<Finding> {
        let s = scrub(src);
        check_file(&ctx(path, &s))
    }

    #[test]
    fn det001_fires_on_hashmap_code_not_comments() {
        let f = rules_on("crates/os/src/kernel.rs", "use std::collections::HashMap;");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DET-001");
        assert!(rules_on("crates/os/src/kernel.rs", "// a HashMap note").is_empty());
    }

    #[test]
    fn det002_catches_instant_and_env() {
        let f = rules_on("crates/sim/src/system.rs", "let t = Instant::now();");
        assert_eq!(f[0].rule, "DET-002");
        let f = rules_on("crates/sim/src/system.rs", "let v = std::env::var(\"X\");");
        assert!(f.iter().any(|f| f.rule == "DET-002"));
    }

    #[test]
    fn det004_scoped_to_cycle_accounting_files() {
        let f = rules_on("crates/nvm/src/timing.rs", "pub latency: f64,");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DET-004");
        assert_eq!(
            rules_on("crates/core/src/channel.rs", "let x = y as f32;")[0].rule,
            "DET-004"
        );
        // Out of scope: floats are fine in report formatting.
        assert!(rules_on("crates/sim/src/report.rs", "let mib = b as f64;").is_empty());
        // Escape hatch and trailing test modules are honoured.
        assert!(rules_on(
            "crates/nvm/src/device.rs",
            "pub transient_read_ber: f64, // lint:allow(DET-004)"
        )
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n let p = 0.5_f64;\n}";
        assert!(rules_on("crates/common/src/time.rs", src).is_empty());
    }

    #[test]
    fn sec001_scoped_to_core_nontest() {
        assert_eq!(
            rules_on("crates/core/src/controller.rs", "let x = y.unwrap();").len(),
            1
        );
        // Same code outside ss-core: no finding.
        assert!(rules_on("crates/sim/src/system.rs", "let x = y.unwrap();").is_empty());
        // Inside the trailing test module: no finding.
        let src = "#[cfg(test)]\nmod tests {\n let x = y.unwrap();\n}";
        assert!(rules_on("crates/core/src/controller.rs", src).is_empty());
    }

    #[test]
    fn sec001_does_not_match_prefixed_idents() {
        assert!(rules_on("crates/core/src/heal.rs", "fn unwrap_or_zero() {}").is_empty());
    }

    #[test]
    fn sec002_allows_core_forbids_rest() {
        assert!(rules_on("crates/core/src/controller.rs", "nvm.write_line(a, &d)?;").is_empty());
        let f = rules_on("crates/sim/src/system.rs", "nvm.write_line(a, &d)?;");
        assert_eq!(f[0].rule, "SEC-002");
        // Longer identifiers do not match.
        assert!(rules_on("crates/sim/src/system.rs", "m.write_line_nt(c, a);").is_empty());
    }

    #[test]
    fn line_allow_escape_suppresses() {
        let f = rules_on(
            "crates/os/src/kernel.rs",
            "use std::collections::HashMap; // lint:allow(DET-001)",
        );
        assert!(f.is_empty());
    }
}
