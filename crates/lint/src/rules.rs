//! The rule catalog.
//!
//! Each rule scans the scrubbed token stream of one source line (see
//! [`crate::lexer`]) and yields findings. Scoping (which files a rule
//! applies to) lives here too, driven by repo-relative paths; the
//! manifest-level rules (LAYER-001, META-001) live in
//! [`crate::layering`]. Rationale and escape hatches for every rule are
//! documented in `LINTS.md`.

use crate::callgraph::CallGraph;
use crate::items::{CallKind, CallSite, FnItem};
use crate::lexer::{Scrubbed, Token};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Everything a source-level rule needs to know about one file.
pub struct FileContext<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    /// Scrubbed source.
    pub scrubbed: &'a Scrubbed,
    /// 1-indexed line of the first `#[cfg(test)]` in the file, if any.
    /// By workspace convention unit-test modules sit at the end of the
    /// file, so rules that exempt test code skip everything from here.
    pub first_test_line: Option<usize>,
}

impl FileContext<'_> {
    /// Whether 1-indexed `line` is inside the trailing test module.
    fn in_test_code(&self, line: usize) -> bool {
        self.first_test_line.is_some_and(|t| line >= t)
    }

    /// Whether this file is itself a test/bench target (integration
    /// tests, benches, fixtures): determinism rules still apply there,
    /// but panic-freedom rules do not.
    fn is_test_target(&self) -> bool {
        self.path.contains("/tests/") || self.path.starts_with("tests/")
    }
}

/// Finds the first `#[cfg(test)]` attribute line in a scrubbed file.
pub fn first_test_line(scrubbed: &Scrubbed) -> Option<usize> {
    (1..=scrubbed.lines.len()).find(|&ln| {
        let toks = scrubbed.tokens(ln);
        find_seq(&toks, &["#", "[", "cfg", "(", "test", ")", "]"]).is_some()
    })
}

/// Runs every source-level rule over `ctx`. Findings come back
/// unfiltered: `lint:allow` escapes and config-level allowlisting are
/// applied centrally by the caller (so escape *usage* can be audited
/// for META-002).
pub fn check_file(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for ln in 1..=ctx.scrubbed.lines.len() {
        let toks = ctx.scrubbed.tokens(ln);
        if toks.is_empty() {
            continue;
        }
        det_001(ctx, ln, &toks, &mut findings);
        det_002(ctx, ln, &toks, &mut findings);
        det_003(ctx, ln, &toks, &mut findings);
        det_004(ctx, ln, &toks, &mut findings);
        sec_001(ctx, ln, &toks, &mut findings);
        sec_002(ctx, ln, &toks, &mut findings);
    }
    findings
}

/// Runs the call-graph rules over the whole analyzed file set. Like
/// [`check_file`], findings are unfiltered; escapes apply centrally.
pub fn check_graph(graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    persist_001(graph, &mut findings);
    sec_003(graph, &mut findings);
    crypto_001(graph, &mut findings);
    layer_002(graph, &mut findings);
    findings
}

/// The files where direct device writes are legitimate: the persist
/// choke point itself and the controller (journal append, recovery
/// redo/undo, spare-pool remap — the machinery persist steps are built
/// from).
const PERSIST_CHOKE_FILES: &[&str] = &[
    "crates/core/src/controller.rs",
    "crates/core/src/persist.rs",
];

/// Whether a call site is a raw device write (`NvmDevice::write_line`,
/// spelled as a method or with an explicit type qualifier).
fn is_device_write(call: &CallSite) -> bool {
    call.name == "write_line"
        && match &call.kind {
            CallKind::Method => true,
            CallKind::Qualified(q) => q == "NvmDevice",
            _ => false,
        }
}

/// PERSIST-001: inside `ss-core`, every durable line write must pass
/// through the `persist_line` choke point, which numbers it as a
/// persist step and (under ADR) journals the write-ahead undo image. A
/// `write_line` call in any other ss-core file bypasses crash-cut
/// accounting and the ordering journal — exactly the "optimized" path
/// that silently loses crash consistency. Within the choke files the
/// write is legitimate only while a `persist_line` function actually
/// exists in the analyzed set: a refactor that deletes or renames the
/// choke point is flagged at every device write it orphans.
fn persist_001(graph: &CallGraph, out: &mut Vec<Finding>) {
    let persist_exists = graph
        .fns
        .iter()
        .any(|f| f.name == "persist_line" && !f.in_test && f.file.starts_with("crates/core/src/"));
    for f in &graph.fns {
        if !f.file.starts_with("crates/core/src/") || f.in_test {
            continue;
        }
        let in_choke = PERSIST_CHOKE_FILES.contains(&f.file.as_str());
        for call in &f.calls {
            if !is_device_write(call) {
                continue;
            }
            if !in_choke {
                out.push(Finding::new(
                    &f.file,
                    call.line,
                    "PERSIST-001",
                    format!(
                        "{}() writes the device directly; route durable writes through the \
                         persist_line choke point so each takes a persist step and its \
                         ordering-journal entry",
                        f.name
                    ),
                ));
            } else if !persist_exists {
                out.push(Finding::new(
                    &f.file,
                    call.line,
                    "PERSIST-001",
                    format!(
                        "{}() writes the device but ss-core defines no persist_line choke \
                         point; the ordering-journal invariant has lost its anchor",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// The crates a `MemoryController` request may execute in: ss-core and
/// the helper crates its layer depends on. SEC-003's reachability
/// traversal never leaves this set, so name collisions with harness or
/// bench code cannot drag unrelated functions into the closure.
const CONTROLLER_DOMAIN: &[&str] = &[
    "crates/core/src/",
    "crates/crypto/src/",
    "crates/nvm/src/",
    "crates/cache/src/",
    "crates/common/src/",
    "crates/trace/src/",
];

/// Whether a `MemoryController` method is part of the public request
/// API that SEC-003 roots at (`read_block`, `write_block`,
/// `shred_page*`, `recover_mut`, and any future spelling with those
/// prefixes).
fn is_controller_root(name: &str) -> bool {
    name == "recover_mut"
        || name.starts_with("read")
        || name.starts_with("write")
        || name.starts_with("shred")
}

/// SEC-003: call-graph panic-reachability. No function transitively
/// reachable from `MemoryController`'s public API may `panic!`,
/// `unwrap()` or `expect()` — the interprocedural extension of SEC-001
/// into the `ss-crypto`/`ss-nvm`/`ss-cache` helpers those paths
/// actually execute. Findings are reported only outside
/// `crates/core/src/` (SEC-001 already owns every line there).
fn sec_003(graph: &CallGraph, out: &mut Vec<Finding>) {
    let domain = |f: &FnItem| !f.in_test && CONTROLLER_DOMAIN.iter().any(|d| f.file.starts_with(d));
    let mut reached: BTreeMap<usize, BTreeSet<&str>> = BTreeMap::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.impl_type.as_deref() == Some("MemoryController")
            && f.is_pub
            && !f.in_test
            && f.file.starts_with("crates/core/src/")
            && is_controller_root(&f.name)
        {
            for r in graph.reachable(idx, &domain) {
                reached.entry(r).or_default().insert(f.name.as_str());
            }
        }
    }
    for (idx, roots) in &reached {
        let f = &graph.fns[*idx];
        if f.file.starts_with("crates/core/src/") {
            continue;
        }
        for call in &f.calls {
            let panics = match &call.kind {
                CallKind::Macro => call.name == "panic",
                CallKind::Method => call.name == "unwrap" || call.name == "expect",
                _ => false,
            };
            if panics {
                let via: Vec<&str> = roots.iter().copied().collect();
                out.push(Finding::new(
                    &f.file,
                    call.line,
                    "SEC-003",
                    format!(
                        "{}() is reachable from MemoryController::{{{}}} but calls {}; \
                         propagate ss_common::error instead",
                        f.name,
                        via.join(","),
                        call.name
                    ),
                ));
            }
        }
    }
}

/// The `ss-crypto` surfaces that recover plaintext or keystream
/// material: line/block decryption and the one-time-pad generator.
const CRYPTO_DECRYPT_SURFACE: &[&str] = &["decrypt_line", "decrypt_block", "pad"];

/// The `ss-crypto` two-share scatter primitives: random-share
/// generation, XOR-mask derivation, and recombination.
const SHARE_SURFACE: &[&str] = &["gen_share", "mask_share", "recombine_shares"];

/// LAYER-002: the two-share scatter primitives are defined in
/// `ss-crypto` and invoked only from `ss-core` — the scattered-mode
/// dual of CRYPTO-001. `recombine_shares` reassembles plaintext from a
/// share pair, so a call above the controller is an oracle that skips
/// the liveness check standing between the share arrays and the
/// caller; and a same-named re-definition outside ss-crypto forks the
/// primitive away from its one audited home. Calls that resolve to an
/// unrelated workspace function outside ss-crypto are not flagged.
fn layer_002(graph: &CallGraph, out: &mut Vec<Finding>) {
    for f in &graph.fns {
        if f.in_test {
            continue;
        }
        // Definition containment: the primitives live in ss-crypto only.
        if SHARE_SURFACE.contains(&f.name.as_str()) && !f.file.starts_with("crates/crypto/src/") {
            out.push(Finding::new(
                &f.file,
                f.line,
                "LAYER-002",
                format!(
                    "{}() re-defines a share primitive outside ss-crypto; the scatter \
                     surface has one audited home",
                    f.name
                ),
            ));
        }
        // Call containment: only the controller may drive them.
        if f.file.starts_with("crates/core/src/") || f.file.starts_with("crates/crypto/src/") {
            continue;
        }
        for call in &f.calls {
            if !SHARE_SURFACE.contains(&call.name.as_str()) || matches!(call.kind, CallKind::Macro)
            {
                continue;
            }
            let targets = graph.resolve(f, call);
            if !targets.is_empty()
                && !targets
                    .iter()
                    .any(|&t| graph.fns[t].file.starts_with("crates/crypto/src/"))
            {
                continue;
            }
            out.push(Finding::new(
                &f.file,
                call.line,
                "LAYER-002",
                format!(
                    "{}() touches share material outside ss-core; the ss-crypto scatter \
                     primitives are contained to the controller",
                    call.name
                ),
            ));
        }
    }
}

/// CRYPTO-001: the decrypt/keystream surfaces of `ss-crypto` may be
/// invoked only from `ss-core` (and `ss-crypto` itself) — the
/// plaintext-containment dual of SEC-002. Software above the controller
/// sees plaintext only through the controller's read path, where the
/// shred check and zero-fill stand between the array and the caller; a
/// decrypt call anywhere else is an oracle that bypasses them. A call
/// that resolves to a same-named workspace function outside ss-crypto
/// is not flagged.
fn crypto_001(graph: &CallGraph, out: &mut Vec<Finding>) {
    for f in &graph.fns {
        if f.in_test
            || f.file.starts_with("crates/core/src/")
            || f.file.starts_with("crates/crypto/src/")
        {
            continue;
        }
        for call in &f.calls {
            if !CRYPTO_DECRYPT_SURFACE.contains(&call.name.as_str())
                || !matches!(call.kind, CallKind::Method | CallKind::Qualified(_))
            {
                continue;
            }
            let targets = graph.resolve(f, call);
            if !targets.is_empty()
                && !targets
                    .iter()
                    .any(|&t| graph.fns[t].file.starts_with("crates/crypto/src/"))
            {
                continue;
            }
            out.push(Finding::new(
                &f.file,
                call.line,
                "CRYPTO-001",
                format!(
                    "{}() recovers plaintext/keystream outside ss-core; ss-crypto decrypt \
                     surfaces are contained to the controller",
                    call.name
                ),
            ));
        }
    }
}

/// DET-001: no `HashMap`/`HashSet` anywhere in the workspace. Their
/// iteration order is randomized per process (`RandomState`), which
/// breaks byte-identical reports and makes tie-breaks (e.g. max-wear
/// scans) nondeterministic across runs.
fn det_001(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    for name in ["HashMap", "HashSet"] {
        if toks.iter().any(|t| t.is_ident(name)) {
            out.push(Finding::new(
                ctx.path,
                ln,
                "DET-001",
                format!("{name} iterates in random order; use BTreeMap/BTreeSet"),
            ));
        }
    }
}

/// DET-002: no wall-clock or OS-environment inputs. Simulated time is
/// `ss_common::time::Cycles`; anything observable must be a pure
/// function of the configuration and seed.
fn det_002(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    let mut hit = |what: &str| {
        out.push(Finding::new(
            ctx.path,
            ln,
            "DET-002",
            format!("{what} injects wall-clock/OS state into a deterministic path"),
        ));
    };
    if find_seq(toks, &["Instant", "::", "now"]).is_some() {
        hit("Instant::now");
    }
    if toks.iter().any(|t| t.is_ident("SystemTime")) {
        hit("SystemTime");
    }
    if find_seq(toks, &["std", "::", "env"]).is_some() || find_seq(toks, &["env", "::"]).is_some() {
        hit("std::env");
    }
}

/// DET-003: all randomness flows through `ss_common::rng::DetRng`.
/// External RNGs (the `rand` crate family, hasher entropy) either pull
/// OS entropy or change streams across versions.
fn det_003(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "StdRng",
        "SmallRng",
        "ThreadRng",
        "OsRng",
        "getrandom",
        "from_entropy",
        "RandomState",
        "DefaultHasher",
    ];
    for name in BANNED {
        if toks.iter().any(|t| t.is_ident(name)) {
            out.push(Finding::new(
                ctx.path,
                ln,
                "DET-003",
                format!("{name}: construct RNGs via ss_common::rng::DetRng only"),
            ));
        }
    }
    if find_seq(toks, &["rand", "::"]).is_some() {
        out.push(Finding::new(
            ctx.path,
            ln,
            "DET-003",
            "the rand crate is banned: construct RNGs via ss_common::rng::DetRng".to_string(),
        ));
    }
}

/// DET-004: no floating point in cycle, fault, or energy accounting.
/// `f64` rounding depends on evaluation order and (historically)
/// platform FMA contraction; every quantity on these paths is exact in
/// integers (picoseconds, picojoules, 2^53-scaled probability
/// thresholds), so a float is either dead weight or a reintroduced
/// nondeterminism hazard. Scoped to the accounting files; the one-time
/// probability→threshold conversion at construction carries explicit
/// `DET-004` line escapes. Trailing test modules are exempt
/// (tests may compare against float reference implementations).
fn det_004(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    const CYCLE_ACCOUNTING_FILES: &[&str] = &[
        "crates/common/src/time.rs",
        "crates/core/src/channel.rs",
        "crates/core/src/shard.rs",
        "crates/nvm/src/device.rs",
        "crates/nvm/src/timing.rs",
    ];
    if !CYCLE_ACCOUNTING_FILES.contains(&ctx.path) || ctx.in_test_code(ln) {
        return;
    }
    for name in ["f64", "f32"] {
        if toks.iter().any(|t| t.is_ident(name)) {
            out.push(Finding::new(
                ctx.path,
                ln,
                "DET-004",
                format!("{name} in cycle/fault/energy accounting; use integer fixed point (Picos, picojoules, DetRng thresholds)"),
            ));
        }
    }
}

/// SEC-001: no `unwrap()`/`expect()`/`panic!` in `ss-core` non-test
/// code. The controller and heal paths sit between every workload and
/// the device; a panic there aborts the simulated machine instead of
/// surfacing a typed `ss_common::error::Error` the harness can classify
/// (detected vs corrupted). Test modules are exempt.
fn sec_001(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/core/src/") || ctx.in_test_code(ln) || ctx.is_test_target() {
        return;
    }
    for (name, suffix) in [("unwrap", '('), ("expect", '('), ("panic", '!')] {
        let mut i = 0;
        while let Some(pos) = toks[i..].iter().position(|t| t.is_ident(name)) {
            let at = i + pos;
            if toks.get(at + 1).is_some_and(|t| t.is_punct(suffix)) {
                out.push(Finding::new(
                    ctx.path,
                    ln,
                    "SEC-001",
                    format!("{name} on a controller/heal path; propagate ss_common::error instead"),
                ));
            }
            i = at + 1;
        }
    }
}

/// SEC-002: the raw `ss-nvm` device write surface (`NvmDevice`,
/// `write_line`, `tamper`, `flip_bit`, `fail_line`,
/// `inject_read_error`) may only be referenced from `ss-core` (and
/// `ss-nvm` itself). Everything else must go through the controller so
/// no plaintext can bypass the encrypt path, and — load-bearing for the
/// paper's shredding — so no write can land without its minor-counter
/// bump (see DESIGN.md: a stale minor of zero turns zero-fill reads
/// into array reads of stale ciphertext).
fn sec_002(ctx: &FileContext<'_>, ln: usize, toks: &[Token], out: &mut Vec<Finding>) {
    if ctx.path.starts_with("crates/core/src/") || ctx.path.starts_with("crates/nvm/src/") {
        return;
    }
    if toks.iter().any(|t| t.is_ident("NvmDevice")) {
        out.push(Finding::new(
            ctx.path,
            ln,
            "SEC-002",
            "NvmDevice referenced outside ss-core: raw device access bypasses the encrypt/shred path",
        ));
    }
    const WRITE_APIS: &[&str] = &[
        "write_line",
        "tamper",
        "flip_bit",
        "fail_line",
        "inject_read_error",
    ];
    for name in WRITE_APIS {
        let mut i = 0;
        while let Some(pos) = toks[i..].iter().position(|t| t.is_ident(name)) {
            let at = i + pos;
            if toks.get(at + 1).is_some_and(|t| t.is_punct('(')) {
                out.push(Finding::new(
                    ctx.path,
                    ln,
                    "SEC-002",
                    format!("raw device API {name}() referenced outside ss-core"),
                ));
            }
            i = at + 1;
        }
    }
}

/// Finds `pattern` (idents and one-char puncts; `"::"` spelled as two
/// `":"` entries is also accepted) as a contiguous token sequence.
/// Multi-char pattern entries that are not identifiers are expanded to
/// their characters.
pub fn find_seq(toks: &[Token], pattern: &[&str]) -> Option<usize> {
    let want: Vec<Token> = pattern
        .iter()
        .flat_map(|p| {
            if p.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                vec![Token::Ident((*p).to_string())]
            } else {
                p.chars().map(Token::Punct).collect()
            }
        })
        .collect();
    if want.is_empty() || toks.len() < want.len() {
        return None;
    }
    (0..=toks.len() - want.len()).find(|&i| toks[i..i + want.len()] == want[..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn ctx<'a>(path: &'a str, scrubbed: &'a Scrubbed) -> FileContext<'a> {
        FileContext {
            path,
            scrubbed,
            first_test_line: first_test_line(scrubbed),
        }
    }

    // Mirrors the central pipeline: run the per-file rules, then apply
    // the file's own `lint:allow` escapes (lib.rs does this filtering
    // for real runs, tracking escape usage for META-002).
    fn rules_on(path: &str, src: &str) -> Vec<Finding> {
        let s = scrub(src);
        check_file(&ctx(path, &s))
            .into_iter()
            .filter(|f| !s.allows(f.line, &f.rule))
            .collect()
    }

    #[test]
    fn det001_fires_on_hashmap_code_not_comments() {
        let f = rules_on("crates/os/src/kernel.rs", "use std::collections::HashMap;");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DET-001");
        assert!(rules_on("crates/os/src/kernel.rs", "// a HashMap note").is_empty());
    }

    #[test]
    fn det002_catches_instant_and_env() {
        let f = rules_on("crates/sim/src/system.rs", "let t = Instant::now();");
        assert_eq!(f[0].rule, "DET-002");
        let f = rules_on("crates/sim/src/system.rs", "let v = std::env::var(\"X\");");
        assert!(f.iter().any(|f| f.rule == "DET-002"));
    }

    #[test]
    fn det004_scoped_to_cycle_accounting_files() {
        let f = rules_on("crates/nvm/src/timing.rs", "pub latency: f64,");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DET-004");
        assert_eq!(
            rules_on("crates/core/src/channel.rs", "let x = y as f32;")[0].rule,
            "DET-004"
        );
        // Out of scope: floats are fine in report formatting.
        assert!(rules_on("crates/sim/src/report.rs", "let mib = b as f64;").is_empty());
        // Escape hatch and trailing test modules are honoured.
        assert!(rules_on(
            "crates/nvm/src/device.rs",
            "pub transient_read_ber: f64, // lint:allow(DET-004)"
        )
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n let p = 0.5_f64;\n}";
        assert!(rules_on("crates/common/src/time.rs", src).is_empty());
    }

    #[test]
    fn sec001_scoped_to_core_nontest() {
        assert_eq!(
            rules_on("crates/core/src/controller.rs", "let x = y.unwrap();").len(),
            1
        );
        // Same code outside ss-core: no finding.
        assert!(rules_on("crates/sim/src/system.rs", "let x = y.unwrap();").is_empty());
        // Inside the trailing test module: no finding.
        let src = "#[cfg(test)]\nmod tests {\n let x = y.unwrap();\n}";
        assert!(rules_on("crates/core/src/controller.rs", src).is_empty());
    }

    #[test]
    fn sec001_does_not_match_prefixed_idents() {
        assert!(rules_on("crates/core/src/heal.rs", "fn unwrap_or_zero() {}").is_empty());
    }

    #[test]
    fn sec002_allows_core_forbids_rest() {
        assert!(rules_on("crates/core/src/controller.rs", "nvm.write_line(a, &d)?;").is_empty());
        let f = rules_on("crates/sim/src/system.rs", "nvm.write_line(a, &d)?;");
        assert_eq!(f[0].rule, "SEC-002");
        // Longer identifiers do not match.
        assert!(rules_on("crates/sim/src/system.rs", "m.write_line_nt(c, a);").is_empty());
    }

    #[test]
    fn line_allow_escape_suppresses() {
        let f = rules_on(
            "crates/os/src/kernel.rs",
            "use std::collections::HashMap; // lint:allow(DET-001)",
        );
        assert!(f.is_empty());
    }

    fn graph_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut fns = Vec::new();
        for (path, src) in files {
            let s = scrub(src);
            fns.extend(crate::items::parse_items(path, &s, first_test_line(&s)));
        }
        check_graph(&CallGraph::build(fns))
    }

    #[test]
    fn persist001_flags_device_writes_outside_the_choke_point() {
        let persist = (
            "crates/core/src/persist.rs",
            "impl MemoryController {\n pub fn persist_line(&mut self) { self.nvm.write_line(a, d); }\n}",
        );
        let bypass = (
            "crates/core/src/wear.rs",
            "pub fn migrate(nvm: &mut N) {\n nvm.write_line(a, d);\n}",
        );
        let f = graph_on(&[persist, bypass]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "PERSIST-001");
        assert_eq!(
            (f[0].path.as_str(), f[0].line),
            ("crates/core/src/wear.rs", 2)
        );
        // The choke point itself is clean while it exists…
        assert!(graph_on(&[persist]).is_empty());
        // …but a choke-file write with no persist_line anywhere is red.
        let renamed = (
            "crates/core/src/persist.rs",
            "impl MemoryController {\n pub fn flush(&mut self) { self.nvm.write_line(a, d); }\n}",
        );
        let f = graph_on(&[renamed]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no persist_line choke point"));
    }

    #[test]
    fn sec003_flags_panics_reachable_from_the_controller_api() {
        let api = (
            "crates/core/src/controller.rs",
            "impl MemoryController {\n pub fn read_block(&self) { self.engine.pad_for(1); }\n}",
        );
        let helper = (
            "crates/crypto/src/ctr.rs",
            "impl Engine {\n pub fn pad_for(&self, x: u32) { self.key.get(x).unwrap(); }\n pub fn offline(&self) { panic!(); }\n}",
        );
        let f = graph_on(&[api, helper]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "SEC-003");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("MemoryController::{read_block}"));
        // The unreachable offline() panic is not flagged.
        assert!(!f.iter().any(|f| f.line == 3));
    }

    #[test]
    fn crypto001_contains_decrypt_surfaces_to_core() {
        let sim = (
            "crates/sim/src/probe.rs",
            "pub fn snoop(e: &Engine) { e.decrypt_line(iv, data); }",
        );
        let f = graph_on(&[sim]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "CRYPTO-001");
        // The same call from ss-core is the legitimate read path.
        let core = (
            "crates/core/src/controller.rs",
            "pub fn fill(e: &Engine) { e.decrypt_line(iv, data); }",
        );
        assert!(graph_on(&[core]).is_empty());
        // A call resolving to a local, non-crypto fn of the same name is
        // not a crypto surface.
        let local = (
            "crates/sim/src/fmt.rs",
            "impl Table {\n pub fn pad(&self, w: usize) {}\n pub fn render(&self) { self.pad(3); }\n}",
        );
        assert!(graph_on(&[local]).is_empty());
    }

    #[test]
    fn layer002_contains_share_primitives_to_core_and_crypto() {
        // A recombine call above the controller is an oracle.
        let sim = (
            "crates/sim/src/probe.rs",
            "pub fn peek(a: &Line, b: &Line) -> Line { ss_crypto::share::recombine_shares(a, b) }",
        );
        let f = graph_on(&[sim]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "LAYER-002");
        assert!(f[0].message.contains("recombine_shares"));
        // The same call from ss-core is the legitimate read path.
        let core = (
            "crates/core/src/controller.rs",
            "pub fn fill(a: &Line, b: &Line) -> Line { ss_crypto::share::recombine_shares(a, b) }",
        );
        assert!(graph_on(&[core]).is_empty());
        // Re-defining a primitive outside ss-crypto forks the surface.
        let fork = (
            "crates/nvm/src/device.rs",
            "pub fn gen_share(seed: u64) -> u64 { seed }",
        );
        let f = graph_on(&[fork]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "LAYER-002");
        assert!(f[0].message.contains("re-defines"));
        // A call resolving to a local, unrelated fn of the same name is
        // not a scatter surface once the definition itself is in crypto.
        let home = (
            "crates/crypto/src/share.rs",
            "pub fn mask_share(p: &Line, s: &Line) -> Line { xor(p, s) }",
        );
        assert!(graph_on(&[home]).is_empty());
    }
}
