//! `lint.toml` — the in-repo analyzer configuration.
//!
//! Hand-rolled parser for the small TOML subset the config needs (the
//! workspace is zero-dependency by policy, enforced by LAYER-001
//! itself). Supported syntax:
//!
//! ```toml
//! # comment
//! [[allow]]
//! rule = "DET-002"
//! path = "crates/bench/src/runner.rs"   # exact file, or a "dir/" prefix
//! reason = "why this escape is sound"
//!
//! [layers.ss-core]
//! deps = ["ss-common", "ss-crypto"]
//! ```
//!
//! Anything outside this subset is a hard error: a config typo must
//! fail the lint run loudly, not silently relax a rule.

use std::collections::BTreeMap;

/// One allowlist entry: `rule` is waived for `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID (`DET-001`, …).
    pub rule: String,
    /// Repo-relative file path, or a directory prefix ending in `/`.
    pub path: String,
    /// Human justification (required: an unexplained escape is a smell).
    pub reason: String,
    /// 1-indexed `lint.toml` line of the `[[allow]]` header, so the
    /// META-002 stale-entry finding points at the entry itself.
    pub line: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// File/directory allowlist.
    pub allows: Vec<AllowEntry>,
    /// Declared crate layering: crate name → allowed `[dependencies]`.
    pub layers: BTreeMap<String, Vec<String>>,
}

impl LintConfig {
    /// Whether `rule` is waived for `path` by the allowlist.
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && (a.path == path || (a.path.ends_with('/') && path.starts_with(&a.path)))
        })
    }

    /// Parses the configuration file contents.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for any syntax or
    /// schema violation.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = LintConfig::default();
        let mut section = Section::None;
        let mut pending: Option<(usize, String)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let stripped = strip_comment(raw).trim().to_string();
            if stripped.is_empty() {
                continue;
            }
            // Multi-line arrays: buffer from `key = [` to the closing `]`.
            let line = match pending.take() {
                Some((start, mut buf)) => {
                    buf.push(' ');
                    buf.push_str(&stripped);
                    if !buf.contains(']') {
                        pending = Some((start, buf));
                        continue;
                    }
                    buf
                }
                None => {
                    if stripped.contains('[') && !stripped.contains(']') && stripped.contains('=') {
                        pending = Some((lineno, stripped));
                        continue;
                    }
                    stripped
                }
            };
            if line == "[[allow]]" {
                cfg.finish_allow(&mut section, lineno)?;
                section = Section::Allow {
                    line: lineno,
                    rule: None,
                    path: None,
                    reason: None,
                };
                continue;
            }
            if let Some(name) = line
                .strip_prefix("[layers.")
                .and_then(|r| r.strip_suffix(']'))
            {
                cfg.finish_allow(&mut section, lineno)?;
                let name = name.trim_matches('"').to_string();
                if name.is_empty() {
                    return Err(format!("lint.toml:{lineno}: empty layer name"));
                }
                if cfg.layers.contains_key(&name) {
                    return Err(format!("lint.toml:{lineno}: duplicate layer {name:?}"));
                }
                cfg.layers.insert(name.clone(), Vec::new());
                section = Section::Layer(name);
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("lint.toml:{lineno}: unknown section {line}"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected key = value"))?;
            let key = key.trim();
            let value = value.trim();
            match &mut section {
                Section::None => {
                    return Err(format!("lint.toml:{lineno}: key outside any section"));
                }
                Section::Allow {
                    rule, path, reason, ..
                } => {
                    let v = parse_string(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: expected a string"))?;
                    match key {
                        "rule" => *rule = Some(v),
                        "path" => *path = Some(v),
                        "reason" => *reason = Some(v),
                        other => {
                            return Err(format!("lint.toml:{lineno}: unknown allow key {other:?}"));
                        }
                    }
                }
                Section::Layer(name) => {
                    if key != "deps" {
                        return Err(format!("lint.toml:{lineno}: unknown layer key {key:?}"));
                    }
                    let deps = parse_string_array(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: expected an array"))?;
                    if let Some(layer) = cfg.layers.get_mut(name) {
                        *layer = deps;
                    }
                }
            }
        }
        let last = text.lines().count();
        cfg.finish_allow(&mut section, last)?;
        Ok(cfg)
    }

    /// Closes a pending `[[allow]]` section, validating completeness.
    fn finish_allow(&mut self, section: &mut Section, lineno: usize) -> Result<(), String> {
        if let Section::Allow {
            line,
            rule,
            path,
            reason,
        } = std::mem::replace(section, Section::None)
        {
            match (rule, path, reason) {
                (Some(rule), Some(path), Some(reason)) => {
                    self.allows.push(AllowEntry {
                        rule,
                        path,
                        reason,
                        line,
                    });
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{lineno}: [[allow]] needs rule, path, and reason"
                    ));
                }
            }
        }
        Ok(())
    }
}

enum Section {
    None,
    Allow {
        line: usize,
        rule: Option<String>,
        path: Option<String>,
        reason: Option<String>,
    },
    Layer(String),
}

/// Drops a trailing `# comment` that is not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"value"`.
fn parse_string(v: &str) -> Option<String> {
    v.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
}

/// Parses `["a", "b"]` (possibly empty).
fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|item| !item.is_empty()) // tolerate a trailing comma
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allows_and_layers() {
        let cfg = LintConfig::parse(
            r#"
# top comment
[[allow]]
rule = "DET-002"
path = "crates/bench/src/runner.rs"
reason = "self-timed runner"

[[allow]]
rule = "SEC-002"
path = "crates/bench/"   # directory prefix
reason = "attacker-model experiments"

[layers.ss-common]
deps = []

[layers.ss-core]
deps = ["ss-common", "ss-crypto"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.allows.len(), 2);
        // Entry lines point at the [[allow]] headers, for META-002.
        assert_eq!(cfg.allows[0].line, 3);
        assert_eq!(cfg.allows[1].line, 8);
        assert!(cfg.allows("DET-002", "crates/bench/src/runner.rs"));
        assert!(!cfg.allows("DET-002", "crates/bench/src/lib.rs"));
        assert!(cfg.allows("SEC-002", "crates/bench/src/experiments.rs"));
        assert_eq!(cfg.layers["ss-core"], vec!["ss-common", "ss-crypto"]);
        assert!(cfg.layers["ss-common"].is_empty());
    }

    #[test]
    fn multi_line_arrays_parse() {
        let cfg = LintConfig::parse(
            "[layers.ss-sim]\ndeps = [\n    \"ss-common\",\n    \"ss-core\",\n]\n",
        )
        .expect("parses");
        assert_eq!(cfg.layers["ss-sim"], vec!["ss-common", "ss-core"]);
    }

    #[test]
    fn incomplete_allow_is_an_error() {
        let err = LintConfig::parse("[[allow]]\nrule = \"DET-001\"\n").unwrap_err();
        assert!(err.contains("needs rule, path, and reason"), "{err}");
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(LintConfig::parse("[surprise]\n").is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = LintConfig::parse(
            "[[allow]]\nrule = \"X\"\npath = \"p\"\nreason = \"r\"\nfoo = \"bar\"\n",
        )
        .unwrap_err();
        assert!(err.contains("unknown allow key"), "{err}");
    }

    #[test]
    fn duplicate_layer_is_an_error() {
        let err =
            LintConfig::parse("[layers.ss-a]\ndeps = []\n[layers.ss-a]\ndeps = []\n").unwrap_err();
        assert!(err.contains("duplicate layer"), "{err}");
    }
}
