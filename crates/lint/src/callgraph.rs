//! An approximate workspace call graph over [`crate::items`].
//!
//! Resolution is by name, not by type — deliberately over-approximate
//! so that graph rules (reachability, containment) never miss a real
//! edge. The shape of the call narrows the candidate set:
//!
//! * `Type::name(…)` resolves to functions in an `impl Type` block
//!   (nothing, when `Type` is a foreign/std type with no workspace
//!   impl);
//! * `Self::name(…)` resolves inside the caller's own impl target;
//! * `module::name(…)` (lowercase qualifier) and bare `name(…)` prefer
//!   free functions of that name, falling back to any;
//! * `recv.name(…)` resolves to every workspace *method* of that name —
//!   the deliberately blunt edge that keeps reachability sound without
//!   type inference;
//! * macros resolve to nothing (they are matched directly by rules).
//!
//! Test code (trailing `#[cfg(test)]` modules, `tests/`, `benches/`,
//! `examples/` targets) is excluded from the resolution index, so the
//! graph describes production paths only.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{CallKind, CallSite, FnItem};

/// The workspace call graph: parsed functions plus a name index.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every parsed function, in file/parse order.
    pub fns: Vec<FnItem>,
    /// Resolution index over non-test functions.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph (and its name index) from parsed items.
    pub fn build(fns: Vec<FnItem>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }
        CallGraph { fns, by_name }
    }

    /// Resolves one call site made by `caller` to candidate callees.
    pub fn resolve(&self, caller: &FnItem, call: &CallSite) -> Vec<usize> {
        let Some(candidates) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let with = |pred: &dyn Fn(&FnItem) -> bool| -> Vec<usize> {
            candidates
                .iter()
                .copied()
                .filter(|&i| pred(&self.fns[i]))
                .collect()
        };
        match &call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Method => with(&|f| f.is_method),
            CallKind::Qualified(q) if q == "Self" => with(&|f| f.impl_type == caller.impl_type),
            CallKind::Qualified(q) => {
                let on_type = with(&|f| f.impl_type.as_deref() == Some(q.as_str()));
                if !on_type.is_empty() {
                    return on_type;
                }
                // An uppercase qualifier names a type; with no workspace
                // impl it is foreign (Vec::new, u32::from_le_bytes) and
                // resolves to nothing. A lowercase qualifier is a module
                // path, so fall through to free-function resolution.
                if q.chars().next().is_some_and(char::is_uppercase) {
                    return Vec::new();
                }
                prefer_free(candidates, &self.fns)
            }
            CallKind::Bare => prefer_free(candidates, &self.fns),
        }
    }

    /// The set of functions transitively reachable from `root`
    /// (inclusive), traversing only functions accepted by `domain`.
    pub fn reachable(&self, root: usize, domain: &dyn Fn(&FnItem) -> bool) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            if !seen.insert(idx) {
                continue;
            }
            let f = &self.fns[idx];
            for call in &f.calls {
                for target in self.resolve(f, call) {
                    if !seen.contains(&target) && domain(&self.fns[target]) {
                        stack.push(target);
                    }
                }
            }
        }
        seen
    }
}

/// Bare-name resolution: free functions of that name when any exist,
/// otherwise every function of that name.
fn prefer_free(candidates: &[usize], fns: &[FnItem]) -> Vec<usize> {
    let free: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| !fns[i].is_method)
        .collect();
    if free.is_empty() {
        candidates.to_vec()
    } else {
        free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::scrub;
    use crate::rules::first_test_line;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, src) in files {
            let s = scrub(src);
            fns.extend(parse_items(path, &s, first_test_line(&s)));
        }
        CallGraph::build(fns)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .expect("fn exists")
    }

    #[test]
    fn method_calls_link_across_files() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "pub struct C;\nimpl C {\n pub fn read(&self) { self.pad_for(1); }\n}",
            ),
            (
                "crates/crypto/src/b.rs",
                "pub struct E;\nimpl E {\n pub fn pad_for(&self, x: u32) { helper(x); }\n}\nfn helper(_x: u32) {}",
            ),
        ]);
        let reach = g.reachable(idx(&g, "read"), &|_| true);
        assert!(reach.contains(&idx(&g, "pad_for")));
        assert!(reach.contains(&idx(&g, "helper")));
    }

    #[test]
    fn qualified_calls_respect_impl_type() {
        let g = graph(&[(
            "x.rs",
            "pub struct A;\nimpl A {\n pub fn go() {}\n}\npub struct B;\nimpl B {\n pub fn go() {}\n}\nfn f() { A::go(); }",
        )]);
        let f = &g.fns[idx(&g, "f")];
        let targets = g.resolve(f, &f.calls[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn foreign_type_qualifiers_resolve_to_nothing() {
        let g = graph(&[("x.rs", "fn new() {}\nfn f() { Vec::new(); }")]);
        let f = &g.fns[idx(&g, "f")];
        assert!(g.resolve(f, &f.calls[0]).is_empty());
    }

    #[test]
    fn self_qualifier_stays_in_the_callers_impl() {
        let g = graph(&[(
            "x.rs",
            "pub struct A;\nimpl A {\n fn helper() {}\n pub fn go() { Self::helper(); }\n}\npub struct B;\nimpl B {\n fn helper() {}\n}",
        )]);
        let go = &g.fns[idx(&g, "go")];
        let targets = g.resolve(go, &go.calls[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn test_code_is_not_a_resolution_target() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn f() { helper(); }\n#[cfg(test)]\nmod tests {\n fn helper() {}\n}",
        )]);
        let f = &g.fns[idx(&g, "f")];
        assert!(g.resolve(f, &f.calls[0]).is_empty());
    }

    #[test]
    fn domain_bounds_traversal() {
        let g = graph(&[
            ("crates/core/src/a.rs", "pub fn f() { over_there(); }"),
            (
                "crates/harness/src/b.rs",
                "pub fn over_there() { deeper(); }\npub fn deeper() {}",
            ),
        ]);
        let reach = g.reachable(idx(&g, "f"), &|f| f.file.starts_with("crates/core/"));
        assert!(!reach.contains(&idx(&g, "over_there")));
    }
}
