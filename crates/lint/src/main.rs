//! `ss-lint` CLI.
//!
//! ```text
//! cargo run -p ss-lint -- [--json] [--root DIR] [--rule ID]… [paths…]
//! ```
//!
//! With no paths, lints every `.rs` file and `Cargo.toml` in the
//! workspace. `--rule` (repeatable) keeps only the named rule's
//! findings — the analysis still runs in full, so call-graph rules and
//! escape tracking behave identically; only the report is filtered.
//! Prints `file:line RULE-ID message` per finding (or a JSON array with
//! `--json`) and exits nonzero when anything fires.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

// lint:allow-file(DET-002): a CLI must read its argv and cwd; nothing
// here feeds simulation state.

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<String> = Vec::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--rule" => match args.next() {
                Some(id) => rules.push(id),
                None => {
                    eprintln!("--rule needs a rule ID (e.g. PERSIST-001)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ss-lint [--json] [--root DIR] [--rule ID]... [paths...]");
                return ExitCode::FAILURE;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other} (usage: ss-lint [--json] [--root DIR] [--rule ID]... [paths...])");
                return ExitCode::FAILURE;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ss-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = if paths.is_empty() {
        ss_lint::check_workspace(&root)
    } else {
        ss_lint::load_config(&root).and_then(|config| ss_lint::check_files(&root, &config, &paths))
    };
    let mut findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ss-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !rules.is_empty() {
        findings.retain(|f| rules.iter().any(|r| r == &f.rule));
    }

    if json {
        print!("{}", ss_lint::render_json(&findings));
    } else {
        print!("{}", ss_lint::render_text(&findings));
        if findings.is_empty() {
            eprintln!("ss-lint: clean");
        } else {
            eprintln!("ss-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Ascends from the current directory to the nearest `lint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found between cwd and filesystem root".to_string());
        }
    }
}
