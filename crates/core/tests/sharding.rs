//! Sharded-controller integration properties:
//!
//! 1. the interleaving is a partition — every block belongs to exactly
//!    one shard, and the map round-trips;
//! 2. a 1-shard [`ShardedController`] is behaviourally identical to the
//!    plain [`MemoryController`] under the same operation sequence,
//!    metric for metric;
//! 3. after an MMIO enqueue + drain, every shredded page zero-fills on
//!    *its own shard* — shredding one shard's pages never leaks into a
//!    neighbour.

use ss_common::{Cycles, DetRng, PageId};
use ss_core::{
    mmio, ControllerConfig, Interleave, MemoryController, ShardedConfig, ShardedController,
};

#[test]
fn every_page_maps_to_exactly_one_shard() {
    for shards in [1u32, 2, 3, 4, 8] {
        let il = Interleave::new(shards).unwrap();
        for p in 0..4096u64 {
            let page = PageId::new(p);
            let owner = il.shard_of_page(page);
            assert!(owner < shards);
            // Exactly one shard claims the page: its (shard, local)
            // pair round-trips, and no other shard's local space maps
            // back to it.
            assert_eq!(il.global_page(owner, il.local_page(page)), page);
            let mut claimants = 0;
            for s in 0..shards {
                // Shard s claims p iff some local frame maps to it;
                // round-robin means that frame must be p / shards.
                if il.global_page(s, il.local_page(page)) == page {
                    claimants += 1;
                }
            }
            assert_eq!(claimants, 1, "page {p} claimed by {claimants} shards");
        }
        // Blocks inherit their page's owner.
        let addr = PageId::new(77).block_addr(13);
        assert_eq!(il.shard_of_block(addr), il.shard_of_page(PageId::new(77)));
    }
}

/// Drives the same deterministic op mix against both controllers and
/// returns their metric registries' JSON for comparison.
// Test-only helper: unwrap-to-fail-loudly, like the #[test] fns that
// clippy.toml's allow-unwrap-in-tests already covers.
#[allow(clippy::unwrap_used)]
fn run_mix(plain: &mut MemoryController, sharded: &mut ShardedController) {
    let frames = plain.config().frames();
    let mut rng = DetRng::new(0x5EED);
    let mut now = Cycles::ZERO;
    for i in 0..2000u64 {
        let page = PageId::new(rng.below(frames));
        let block = rng.below(64) as usize;
        let addr = page.block_addr(block);
        match i % 5 {
            0 | 1 => {
                let fill = [i as u8; 64];
                let a = plain.write_block(addr, &fill, false, now).unwrap();
                let b = sharded.write_block(addr, &fill, false, now).unwrap();
                assert_eq!(a, b, "write latency diverged at op {i}");
                now += a;
            }
            2 | 3 => {
                let a = plain.read_block(addr, now).unwrap();
                let b = sharded.read_block(addr, now).unwrap();
                assert_eq!(a.data, b.data, "read data diverged at op {i}");
                assert_eq!(a.latency, b.latency, "read latency diverged at op {i}");
                assert_eq!(a.zero_filled, b.zero_filled);
                now += a.latency;
            }
            _ => {
                let a = plain
                    .mmio_write(mmio::SHRED_REG, page.base_addr().raw(), true, now)
                    .unwrap();
                let b = sharded
                    .mmio_write(mmio::SHRED_REG, page.base_addr().raw(), true, now)
                    .unwrap();
                assert_eq!(a, b, "shred latency diverged at op {i}");
                now += a;
            }
        }
    }
}

#[test]
fn one_shard_matches_plain_controller_exactly() {
    let config = ControllerConfig::small_test();
    let mut plain = MemoryController::new(config.clone()).unwrap();
    let mut sharded = ShardedController::new(ShardedConfig::new(1, config)).unwrap();
    run_mix(&mut plain, &mut sharded);

    let plain_metrics = plain.inspect().metrics();
    let sharded_metrics = sharded.metrics();
    // Every plain metric must appear in the merged registry unchanged;
    // the sharded registry only adds shard.* gauges on top.
    for (name, value) in plain_metrics.iter() {
        assert_eq!(
            sharded_metrics.get(name),
            Some(value),
            "metric {name} diverged between plain and 1-shard controllers"
        );
    }
    assert_eq!(sharded_metrics.get("shard.count"), Some(1));
}

#[test]
fn shred_reads_zero_on_every_shard() {
    let mut sc =
        ShardedController::new(ShardedConfig::new(4, ControllerConfig::small_test())).unwrap();
    let frames = sc.config().base.frames();
    // Dirty one line in every page, everywhere.
    for p in 0..frames {
        let addr = PageId::new(p).block_addr((p % 64) as usize);
        sc.write_block(addr, &[0xEE; 64], false, Cycles::ZERO)
            .unwrap();
    }
    // Enqueue + drain a stripe covering all four shards.
    for p in 0..frames {
        sc.mmio_write(
            mmio::SHRED_ENQ_REG,
            PageId::new(p).base_addr().raw(),
            true,
            Cycles::ZERO,
        )
        .unwrap();
    }
    sc.mmio_write(mmio::SHRED_DRAIN_REG, 0, true, Cycles::ZERO)
        .unwrap();
    for p in 0..frames {
        let addr = PageId::new(p).block_addr((p % 64) as usize);
        let r = sc.read_block(addr, Cycles::ZERO).unwrap();
        assert!(r.zero_filled, "page {p} not zero-filled after batch shred");
        assert_eq!(r.data, [0u8; 64]);
    }
    // Each of the 4 shards executed exactly its share.
    for s in 0..4 {
        let shreds = sc.inspect_shard(s).unwrap().stats().shreds.get();
        assert_eq!(shreds, frames / 4, "shard {s} shredded {shreds}");
    }
    assert!(sc.inspect_shard(4).is_none());
}
