//! The memory-protection backend trait (DESIGN.md §15).
//!
//! [`MemoryProtection`] owns the surface the controller used to
//! hard-code against counter-mode AES-CTR: encrypt-on-write,
//! decrypt-on-read, shred, rescue-remap, and recovery re-verification.
//! Two backends ship:
//!
//! * [`CounterModeBackend`] — the paper's design, dispatching to the
//!   exact pre-trait code paths (including the `None`/`Ecb` baselines
//!   governed by [`crate::EncryptionMode`]). Behaviour is byte-identical
//!   to the pre-trait controller: every committed faultsweep /
//!   attacksweep / crashsweep / metrics golden passes unchanged.
//! * [`ScatteredTwoShareBackend`] — secret-shares every line into a
//!   uniform-random share (data region) and an XOR-masked share (mask
//!   region), per `ss_crypto::share`. Either share alone is a one-time
//!   pad of nothing; shred = discard the masked share.
//!
//! The contract each method must uphold (shred-reads-zero, rescue,
//! recovery) is specified on the trait methods and in DESIGN.md §15.
//! Backends are stateless unit structs: all state (engines, share
//! stream, metadata) lives in the controller, so dispatch is one
//! `&'static dyn` call with no borrow gymnastics.

use std::fmt;

use ss_common::{BlockAddr, Counter, Cycles, PageId, Result};
use ss_crypto::Line;

use crate::config::ProtectionMode;
use crate::controller::{MemoryController, ReadResult};
use crate::persist::RecoveryReport;

/// Scattered-backend activity counters, exported under `prot.*` when
/// the backend is active (the counter-mode metrics schema is
/// unchanged — the keys only exist for scattered configurations).
#[derive(Debug, Clone, Default)]
pub struct ProtStats {
    /// Share pairs written (one random share + one masked share each).
    pub share_writes: Counter,
    /// Mask-region line writes (share-pair writes + shred discards).
    pub mask_writes: Counter,
    /// Reads served by recombining both shares.
    pub share_reads: Counter,
    /// XOR recombinations performed (reads + rescues).
    pub recombines: Counter,
    /// Mask lines discarded (overwritten with fresh randomness) by
    /// shred commands.
    pub mask_discards: Counter,
    /// Spare-pool rescues that re-shared the plaintext under a fresh
    /// pad (a spare never inherits a used one).
    pub fresh_share_rescues: Counter,
}

/// A memory-protection backend. Implementations are stateless: every
/// method receives the controller and operates on its state.
///
/// # Contract
///
/// * **shred-reads-zero** — after [`MemoryProtection::shred_page`]
///   returns, [`MemoryProtection::read_line`] of every block of the
///   page must yield an all-zero, `zero_filled` result without exposing
///   prior contents, and must keep doing so across
///   [`MemoryController::power_loss`] /
///   [`MemoryController::recover_mut`].
/// * **rescue** — [`MemoryProtection::rescue_remap`] moves a degrading
///   line to a spare without ever persisting plaintext or reusing
///   key-stream/pad material; a shredded line is retired without
///   resurrecting content.
/// * **recovery** — [`MemoryProtection::recovery_reverify`] must fail
///   loudly ([`ss_common::Error::IntegrityViolation`]) rather than let
///   a read be served against unverified protection metadata.
pub trait MemoryProtection: fmt::Debug + Sync {
    /// The config-axis value this backend implements.
    fn kind(&self) -> ProtectionMode;

    /// Services a demand read of one line (decrypt / recombine /
    /// zero-fill). The caller has validated the address and handles
    /// deferred heals and latency recording.
    fn read_line(
        &self,
        mc: &mut MemoryController,
        addr: BlockAddr,
        now: Cycles,
    ) -> Result<ReadResult>;

    /// Persists one line (encrypt / share-split) with full metadata
    /// maintenance. The caller brackets the persist sequence and counts
    /// the write.
    fn write_line(
        &self,
        mc: &mut MemoryController,
        addr: BlockAddr,
        data: &Line,
        now: Cycles,
    ) -> Result<()>;

    /// Writes a zero line in-device (RowClone path): like
    /// [`MemoryProtection::write_line`] but without bus scheduling.
    fn zero_line(&self, mc: &mut MemoryController, addr: BlockAddr, now: Cycles) -> Result<()>;

    /// Executes the shred core for `page` (metadata fetch, content
    /// destruction, metadata install) and returns the critical-path
    /// latency. The caller has already enforced privilege and range,
    /// and accounts the shred + trace event.
    fn shred_page(&self, mc: &mut MemoryController, page: PageId, now: Cycles) -> Result<Cycles>;

    /// Moves the degrading (ECC-correctable but permanently weak) line
    /// at logical `addr` to a spare. The caller has ruled out
    /// quarantined and already-healed lines and drained queued writes.
    fn rescue_remap(&self, mc: &mut MemoryController, addr: BlockAddr, now: Cycles) -> Result<()>;

    /// What running software would observe at `addr`, without stats or
    /// timing side effects (test/attack-model surface).
    fn peek_plaintext(&self, mc: &mut MemoryController, addr: BlockAddr) -> Result<Line>;

    /// Post-journal-resolution reboot checks: re-verify protection
    /// metadata against the trusted in-controller state and census
    /// shredded pages into `report`.
    fn recovery_reverify(
        &self,
        mc: &mut MemoryController,
        report: &mut RecoveryReport,
    ) -> Result<()>;

    /// Number of NVM lines of protection metadata this backend
    /// maintains for the current configuration (counter lines, liveness
    /// lines). Backend-neutral replacement for pattern-matching on
    /// counter-cache internals.
    fn metadata_lines(&self, mc: &MemoryController) -> u64;
}

/// The paper's counter-mode backend (and its `None`/`Ecb` baselines).
#[derive(Debug)]
pub struct CounterModeBackend;

/// The scattered two-share backend.
#[derive(Debug)]
pub struct ScatteredTwoShareBackend;

static COUNTER_MODE: CounterModeBackend = CounterModeBackend;
static SCATTERED: ScatteredTwoShareBackend = ScatteredTwoShareBackend;

/// Resolves the backend for a protection mode. Returned references are
/// `'static`: backends are stateless, so call sites re-resolve freely.
pub fn backend(mode: ProtectionMode) -> &'static dyn MemoryProtection {
    match mode {
        ProtectionMode::CounterMode => &COUNTER_MODE,
        ProtectionMode::ScatteredTwoShare => &SCATTERED,
    }
}

impl MemoryProtection for CounterModeBackend {
    fn kind(&self) -> ProtectionMode {
        ProtectionMode::CounterMode
    }

    fn read_line(
        &self,
        mc: &mut MemoryController,
        addr: BlockAddr,
        now: Cycles,
    ) -> Result<ReadResult> {
        mc.legacy_read_line(addr, now)
    }

    fn write_line(
        &self,
        mc: &mut MemoryController,
        addr: BlockAddr,
        data: &Line,
        now: Cycles,
    ) -> Result<()> {
        mc.legacy_write_line(addr, data, now)
    }

    fn zero_line(&self, mc: &mut MemoryController, addr: BlockAddr, now: Cycles) -> Result<()> {
        mc.legacy_zero_line(addr, now)
    }

    fn shred_page(&self, mc: &mut MemoryController, page: PageId, now: Cycles) -> Result<Cycles> {
        mc.legacy_shred_page(page, now)
    }

    fn rescue_remap(&self, mc: &mut MemoryController, addr: BlockAddr, now: Cycles) -> Result<()> {
        mc.legacy_rescue_remap(addr, now)
    }

    fn peek_plaintext(&self, mc: &mut MemoryController, addr: BlockAddr) -> Result<Line> {
        mc.legacy_peek_plaintext(addr)
    }

    fn recovery_reverify(
        &self,
        mc: &mut MemoryController,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        mc.legacy_recovery_reverify(report)
    }

    fn metadata_lines(&self, mc: &MemoryController) -> u64 {
        mc.counter_metadata_lines()
    }
}

impl MemoryProtection for ScatteredTwoShareBackend {
    fn kind(&self) -> ProtectionMode {
        ProtectionMode::ScatteredTwoShare
    }

    fn read_line(
        &self,
        mc: &mut MemoryController,
        addr: BlockAddr,
        now: Cycles,
    ) -> Result<ReadResult> {
        mc.scattered_read_line(addr, now)
    }

    fn write_line(
        &self,
        mc: &mut MemoryController,
        addr: BlockAddr,
        data: &Line,
        now: Cycles,
    ) -> Result<()> {
        mc.scattered_write_line(addr, data, now, true)
    }

    fn zero_line(&self, mc: &mut MemoryController, addr: BlockAddr, now: Cycles) -> Result<()> {
        mc.scattered_write_line(addr, &ss_crypto::zero_line(), now, false)
    }

    fn shred_page(&self, mc: &mut MemoryController, page: PageId, now: Cycles) -> Result<Cycles> {
        mc.scattered_shred_page(page, now)
    }

    fn rescue_remap(&self, mc: &mut MemoryController, addr: BlockAddr, now: Cycles) -> Result<()> {
        mc.scattered_rescue_remap(addr, now)
    }

    fn peek_plaintext(&self, mc: &mut MemoryController, addr: BlockAddr) -> Result<Line> {
        mc.scattered_peek_plaintext(addr)
    }

    fn recovery_reverify(
        &self,
        mc: &mut MemoryController,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        mc.scattered_recovery_reverify(report)
    }

    fn metadata_lines(&self, mc: &MemoryController) -> u64 {
        mc.scattered_metadata_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_resolution_is_stable() {
        assert_eq!(
            backend(ProtectionMode::CounterMode).kind(),
            ProtectionMode::CounterMode
        );
        assert_eq!(
            backend(ProtectionMode::ScatteredTwoShare).kind(),
            ProtectionMode::ScatteredTwoShare
        );
    }
}
