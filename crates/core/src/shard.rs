//! Multi-channel sharded controller with a batched shred pipeline.
//!
//! Server consolidation is the paper's headline use case (§1, §6): a
//! hypervisor tearing down a VM must shred *gigabytes* of pages at once.
//! A single controller serialises those shreds behind one channel; this
//! module shards the controller into `n` independent channels — each
//! with its own counter state, write queue, spare pool and Merkle
//! subtree — behind one facade, and adds an MMIO shred *command queue*
//! so the kernel can post thousands of shreds and drain them in one
//! batch:
//!
//! * pages are spread across shards by the deterministic round-robin
//!   [`Interleave`] (page `p` → shard `p mod n`), so a contiguous free
//!   run parallelises across every channel;
//! * duplicate pages within a drain window are **coalesced** (one shred
//!   each) whenever the strategy permits
//!   ([`CounterBlock::shred_coalesces`]);
//! * per-shard work executes on independent channels, so batch latency
//!   is the *maximum* over shards, not the sum — the
//!   [`DrainReport`] exposes both so the scaling bench can report the
//!   speed-up directly.
//!
//! A 1-shard instance is the identity interleaving over an unmodified
//! base configuration, and therefore behaves — metric for metric, byte
//! for byte — like the plain [`MemoryController`]
//! (`tests/sharding.rs`).

use std::collections::{BTreeSet, VecDeque};

use ss_common::{BlockAddr, Counter, Cycles, Error, PageId, PhysAddr, Result};
use ss_crypto::Line;
use ss_trace::MetricsRegistry;

use crate::config::ShardedConfig;
use crate::controller::{MemoryController, ReadResult};
use crate::counters::CounterBlock;
use crate::interleave::Interleave;
use crate::mmio;
use crate::persist::RecoveryReport;

/// Per-shard outcomes of a fleet-wide operation (power loss, recovery).
///
/// One bad channel must not mask another's corruption: every shard runs
/// to completion and reports its own result, instead of the sweep
/// stopping at the first error. [`PerShard::ok`] collapses back to the
/// legacy first-error view for callers that only need pass/fail.
#[derive(Debug)]
pub struct PerShard<T> {
    results: Vec<(u32, Result<T>)>,
}

impl<T> PerShard<T> {
    /// Every shard's result, in shard order.
    pub fn results(&self) -> &[(u32, Result<T>)] {
        &self.results
    }

    /// Consumes the outcome, yielding every shard's result.
    pub fn into_results(self) -> Vec<(u32, Result<T>)> {
        self.results
    }

    /// Whether every shard succeeded.
    pub fn is_ok(&self) -> bool {
        self.results.iter().all(|(_, r)| r.is_ok())
    }

    /// Collapses to the first error (legacy single-error view); `Ok`
    /// when every shard succeeded.
    ///
    /// # Errors
    ///
    /// The lowest-numbered failing shard's error.
    pub fn ok(&self) -> Result<()> {
        for (_, r) in &self.results {
            if let Err(e) = r {
                return Err(e.clone());
            }
        }
        Ok(())
    }
}

/// Statistics of the shred command queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShredQueueStats {
    /// Pages accepted into the queue.
    pub enqueued: Counter,
    /// Duplicate pages dropped during drains (coalescing).
    pub coalesced: Counter,
    /// Shreds actually issued to shards by drains.
    pub executed: Counter,
    /// Drain doorbell rings that found work.
    pub drains: Counter,
    /// Enqueues that found the queue at or above capacity (the
    /// back-pressure signal to the kernel).
    pub backpressure: Counter,
}

/// What one batched drain did and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Shreds issued to the shards.
    pub executed: u64,
    /// Duplicate pages coalesced away.
    pub coalesced: u64,
    /// Batch latency: the busiest shard's elapsed cycles. Shards are
    /// independent channels, so they run in parallel.
    pub elapsed: Cycles,
    /// The same work serialised on one channel (the sum over shards) —
    /// the baseline the sharding speed-up is measured against.
    pub serial_cycles: Cycles,
}

/// `n` independent [`MemoryController`] shards behind one facade, plus
/// the batched shred command queue.
#[derive(Debug)]
pub struct ShardedController {
    config: ShardedConfig,
    interleave: Interleave,
    shards: Vec<MemoryController>,
    shred_queue: VecDeque<PageId>,
    queue_stats: ShredQueueStats,
}

impl ShardedController {
    /// Builds the sharded controller: validates the configuration and
    /// constructs one [`MemoryController`] per shard, each owning an
    /// equal capacity slice and a decorrelated fault seed.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] from [`ShardedConfig::validate`] or from
    /// any shard's construction.
    pub fn new(config: ShardedConfig) -> Result<Self> {
        config.validate()?;
        let interleave = Interleave::new(config.shards)?;
        let shards = (0..config.shards)
            .map(|s| MemoryController::new(config.shard_config(s)))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedController {
            config,
            interleave,
            shards,
            shred_queue: VecDeque::new(),
            queue_stats: ShredQueueStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The page→shard map.
    pub fn interleave(&self) -> &Interleave {
        &self.interleave
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.config.shards
    }

    /// Current depth of the shred command queue.
    pub fn shred_queue_len(&self) -> usize {
        self.shred_queue.len()
    }

    /// Shred-queue statistics.
    pub fn shred_queue_stats(&self) -> &ShredQueueStats {
        &self.queue_stats
    }

    fn shard_of_page(&mut self, page: PageId) -> (&mut MemoryController, PageId) {
        let s = self.interleave.shard_of_page(page) as usize;
        let local = self.interleave.local_page(page);
        (&mut self.shards[s], local)
    }

    /// Reads the block at the global address `addr`.
    ///
    /// # Errors
    ///
    /// The owning shard's read-path errors. Out-of-range addresses are
    /// reported against the *total* capacity.
    pub fn read_block(&mut self, addr: BlockAddr, now: Cycles) -> Result<ReadResult> {
        self.check_data_addr(addr)?;
        let s = self.interleave.shard_of_block(addr) as usize;
        let local = self.interleave.local_block(addr);
        self.shards[s].read_block(local, now)
    }

    /// Writes the block at the global address `addr`.
    ///
    /// # Errors
    ///
    /// The owning shard's write-path errors.
    pub fn write_block(
        &mut self,
        addr: BlockAddr,
        data: &Line,
        zeroing: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        self.check_data_addr(addr)?;
        let s = self.interleave.shard_of_block(addr) as usize;
        let local = self.interleave.local_block(addr);
        self.shards[s].write_block(local, data, zeroing, now)
    }

    /// Synchronous shred of one page (the legacy [`mmio::SHRED_REG`]
    /// path), routed to the owning shard.
    ///
    /// # Errors
    ///
    /// As for [`MemoryController::shred_page_at`].
    pub fn shred_page_at(
        &mut self,
        page: PageId,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        self.check_shred_target(page, kernel_mode, mmio::SHRED_REG)?;
        let (shard, local) = self.shard_of_page(page);
        shard.shred_page_at(local, kernel_mode, now)
    }

    /// Appends `page` to the shred command queue without executing it.
    /// Returns `true` when the queue has reached its configured capacity
    /// — the back-pressure signal telling the kernel to ring the drain
    /// doorbell before posting more.
    ///
    /// # Errors
    ///
    /// [`Error::PrivilegeViolation`] for user-mode callers (counted on
    /// the owning shard, like a synchronous denial) and
    /// [`Error::AddrOutOfRange`] for pages outside data memory.
    pub fn enqueue_shred(&mut self, page: PageId, kernel_mode: bool) -> Result<bool> {
        self.check_shred_target(page, kernel_mode, mmio::SHRED_ENQ_REG)?;
        self.shred_queue.push_back(page);
        self.queue_stats.enqueued.inc();
        let full = self.shred_queue.len() >= self.config.shred_queue_capacity;
        if full {
            self.queue_stats.backpressure.inc();
        }
        Ok(full)
    }

    /// Drains the queued shreds as one batch: duplicates are coalesced
    /// per page (when [`CounterBlock::shred_coalesces`] allows), the
    /// survivors are grouped by owning shard, and each shard executes
    /// its group back to back on its own channel. The batch completes
    /// when the busiest shard does.
    ///
    /// An empty queue is a cheap no-op (one cycle, not counted as a
    /// drain).
    ///
    /// # Errors
    ///
    /// [`Error::PrivilegeViolation`] for user-mode callers; shard
    /// shred-path errors otherwise. The drain is not transactional:
    /// shreds executed before an error stick, the rest of the batch is
    /// dropped.
    pub fn drain_shreds(&mut self, kernel_mode: bool, now: Cycles) -> Result<DrainReport> {
        if !kernel_mode {
            self.shards[0].note_shred_denied();
            return Err(Error::PrivilegeViolation {
                addr: mmio::SHRED_DRAIN_REG,
            });
        }
        if self.shred_queue.is_empty() {
            return Ok(DrainReport {
                executed: 0,
                coalesced: 0,
                elapsed: Cycles::new(1),
                serial_cycles: Cycles::new(1),
            });
        }
        self.queue_stats.drains.inc();

        let coalescing = CounterBlock::shred_coalesces(self.config.base.shred_strategy);
        let mut groups: Vec<Vec<PageId>> = vec![Vec::new(); self.shards.len()];
        let mut seen = BTreeSet::new();
        let mut executed = 0u64;
        let mut coalesced = 0u64;
        while let Some(page) = self.shred_queue.pop_front() {
            if coalescing && !seen.insert(page.raw()) {
                coalesced += 1;
                continue;
            }
            executed += 1;
            groups[self.interleave.shard_of_page(page) as usize]
                .push(self.interleave.local_page(page));
        }
        self.queue_stats.coalesced.add(coalesced);
        self.queue_stats.executed.add(executed);

        let mut elapsed = Cycles::ZERO;
        let mut serial = Cycles::ZERO;
        for (s, group) in groups.into_iter().enumerate() {
            let mut shard_elapsed = Cycles::ZERO;
            for local in group {
                shard_elapsed += self.shards[s].shred_page_at(local, true, now + shard_elapsed)?;
            }
            serial += shard_elapsed;
            elapsed = elapsed.max(shard_elapsed);
        }
        Ok(DrainReport {
            executed,
            coalesced,
            elapsed,
            serial_cycles: serial,
        })
    }

    /// MMIO entry point mirroring [`MemoryController::mmio_write`], with
    /// real queue semantics for [`mmio::SHRED_ENQ_REG`] (returns one
    /// cycle: posting is the cheap half of the pipeline) and
    /// [`mmio::SHRED_DRAIN_REG`] (returns the batch latency).
    ///
    /// # Errors
    ///
    /// As for the plain controller: privilege violations for user-mode
    /// writers (unknown registers included), malformed values for
    /// kernel-mode ones; unknown registers in kernel mode complete as
    /// plain bus writes.
    pub fn mmio_write(
        &mut self,
        reg: PhysAddr,
        value: u64,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        match mmio::decode(reg, value) {
            Ok(mmio::MmioOp::Shred(pa)) => self.shred_page_at(pa.page(), kernel_mode, now),
            Ok(mmio::MmioOp::ShredEnqueue(pa)) => self
                .enqueue_shred(pa.page(), kernel_mode)
                .map(|_| Cycles::new(1)),
            Ok(mmio::MmioOp::ShredDrain) => self.drain_shreds(kernel_mode, now).map(|r| r.elapsed),
            Err(_) if !kernel_mode => {
                self.shards[0].note_shred_denied();
                Err(Error::PrivilegeViolation { addr: reg })
            }
            Err(mmio::MmioError::UnknownRegister { .. }) => Ok(Cycles::new(1)),
            Err(e @ mmio::MmioError::MalformedValue { .. }) => Err(e.into_error()),
        }
    }

    /// Cycles until every shard's channels go idle (the fence cost at
    /// `now`): the maximum over shards, since channels drain in
    /// parallel.
    pub fn fence(&self, now: Cycles) -> Cycles {
        self.shards
            .iter()
            .map(|s| s.fence(now))
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Power loss across every shard (each flushes per its own
    /// persistence mode). Queued shred *commands* are volatile MMIO
    /// state and are lost — the kernel re-posts after recovery, exactly
    /// as it would re-issue an un-acked synchronous shred.
    ///
    /// Every shard runs its power-down path even when an earlier shard
    /// errors: power fails on all channels at once, and a flush failure
    /// on channel 0 must not leave channels 1..n un-cycled (or mask
    /// their own failures). Use [`PerShard::ok`] for the legacy
    /// first-error view.
    pub fn power_loss(&mut self) -> PerShard<()> {
        self.shred_queue.clear();
        let results = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, s)| (i as u32, s.power_loss()))
            .collect();
        PerShard { results }
    }

    /// Post-power-loss recovery check across every shard. All shards are
    /// checked — one shard's counter loss does not hide another's.
    pub fn recover(&self) -> PerShard<()> {
        let results = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.recover()))
            .collect();
        PerShard { results }
    }

    /// The reboot recovery protocol
    /// ([`MemoryController::recover_mut`]) on every shard. All shards
    /// recover even when one fails, so a sweep sees every channel's
    /// verdict.
    pub fn recover_mut_all(&mut self) -> PerShard<RecoveryReport> {
        let results = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, s)| (i as u32, s.recover_mut()))
            .collect();
        PerShard { results }
    }

    /// Clears statistics on every shard and on the queue.
    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
        self.queue_stats = ShredQueueStats::default();
    }

    /// Merged metrics: per-shard registries summed name-by-name (the
    /// stable `ctrl.*`/`nvm.*`/... names aggregate across shards), plus
    /// the sharding layer's own `shard.*` gauges.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for s in &self.shards {
            reg.merge(&s.metrics());
        }
        reg.set("shard.count", u64::from(self.config.shards));
        reg.set("shard.queue.len", self.shred_queue.len() as u64);
        reg.set("shard.queue.enqueued", self.queue_stats.enqueued.get());
        reg.set("shard.queue.coalesced", self.queue_stats.coalesced.get());
        reg.set("shard.queue.executed", self.queue_stats.executed.get());
        reg.set("shard.queue.drains", self.queue_stats.drains.get());
        reg.set(
            "shard.queue.backpressure",
            self.queue_stats.backpressure.get(),
        );
        reg
    }

    /// Flushes dirty counter blocks to NVM on every shard (clean
    /// shutdown / battery-backed power-down behaviour).
    ///
    /// # Errors
    ///
    /// The first shard's NVM write error.
    pub fn flush_counters(&mut self) -> Result<()> {
        for s in &mut self.shards {
            s.flush_counters()?;
        }
        Ok(())
    }

    /// One background-scrubber step on *every* shard (each channel runs
    /// its own scrubber in idle cycles). Returns how many shards healed
    /// something this step.
    ///
    /// # Errors
    ///
    /// The first shard's remap-path error.
    pub fn scrub_step(&mut self, now: Cycles) -> Result<u64> {
        let mut healed = 0u64;
        for s in &mut self.shards {
            if s.scrub_step(now)? {
                healed += 1;
            }
        }
        Ok(healed)
    }

    /// Direct access to shard `s` (tests and the facade layer).
    pub(crate) fn shard(&self, s: usize) -> Option<&MemoryController> {
        self.shards.get(s)
    }

    /// Mutable access to shard `s` (the fault-port facade).
    pub(crate) fn shard_mut(&mut self, s: usize) -> Option<&mut MemoryController> {
        self.shards.get_mut(s)
    }

    fn check_data_addr(&self, addr: BlockAddr) -> Result<()> {
        if addr.raw() >= self.config.base.data_capacity {
            return Err(Error::AddrOutOfRange {
                addr: PhysAddr::new(addr.raw()),
                capacity: self.config.base.data_capacity,
            });
        }
        Ok(())
    }

    /// The shared privilege + range gate of the shred entry points.
    /// Denials are counted on the owning shard (shard 0 when the page is
    /// out of range) so merged `ctrl.shred_denied` matches the plain
    /// controller's accounting.
    fn check_shred_target(&mut self, page: PageId, kernel_mode: bool, reg: PhysAddr) -> Result<()> {
        if !kernel_mode {
            let s = if page.base_addr().raw() < self.config.base.data_capacity {
                self.interleave.shard_of_page(page) as usize
            } else {
                0
            };
            self.shards[s].note_shred_denied();
            return Err(Error::PrivilegeViolation { addr: reg });
        }
        if page.base_addr().raw() >= self.config.base.data_capacity {
            return Err(Error::AddrOutOfRange {
                addr: page.base_addr(),
                capacity: self.config.base.data_capacity,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerConfig;

    fn sharded(n: u32) -> ShardedController {
        ShardedController::new(ShardedConfig::new(n, ControllerConfig::small_test())).unwrap()
    }

    #[test]
    fn routes_reads_and_writes_across_shards() {
        let mut sc = sharded(4);
        // One page per shard, distinct data.
        for p in 0..8u64 {
            let addr = PageId::new(p).block_addr(3);
            sc.write_block(addr, &[p as u8 + 1; 64], false, Cycles::ZERO)
                .unwrap();
        }
        for p in 0..8u64 {
            let addr = PageId::new(p).block_addr(3);
            let r = sc.read_block(addr, Cycles::ZERO).unwrap();
            assert_eq!(r.data, [p as u8 + 1; 64], "page {p} misrouted");
        }
        // Every shard saw exactly 2 of the 8 pages.
        for s in 0..4 {
            assert_eq!(sc.shard(s).unwrap().stats().mem.writes.get(), 2);
        }
    }

    #[test]
    fn batched_drain_coalesces_and_parallelises() {
        let mut sc = sharded(4);
        for p in 0..16u64 {
            let addr = PageId::new(p).block_addr(0);
            sc.write_block(addr, &[7; 64], false, Cycles::ZERO).unwrap();
        }
        for p in 0..16u64 {
            assert!(!sc.enqueue_shred(PageId::new(p), true).unwrap());
        }
        // Duplicates of already-queued pages coalesce away.
        sc.enqueue_shred(PageId::new(0), true).unwrap();
        sc.enqueue_shred(PageId::new(5), true).unwrap();

        let report = sc.drain_shreds(true, Cycles::ZERO).unwrap();
        assert_eq!(report.executed, 16);
        assert_eq!(report.coalesced, 2);
        // 4 pages per shard on 4 parallel channels: the batch costs what
        // one shard pays, a quarter of the serialised cost.
        assert_eq!(report.serial_cycles, report.elapsed * 4);
        assert_eq!(sc.shred_queue_len(), 0);

        // Every shredded page now zero-fills.
        for p in 0..16u64 {
            let r = sc
                .read_block(PageId::new(p).block_addr(0), Cycles::ZERO)
                .unwrap();
            assert!(r.zero_filled, "page {p} not shredded");
        }
    }

    #[test]
    fn mmio_queue_registers_drive_the_pipeline() {
        let mut sc = sharded(2);
        let page = PageId::new(6);
        sc.write_block(page.block_addr(1), &[9; 64], false, Cycles::ZERO)
            .unwrap();
        sc.mmio_write(
            mmio::SHRED_ENQ_REG,
            page.base_addr().raw(),
            true,
            Cycles::ZERO,
        )
        .unwrap();
        assert_eq!(sc.shred_queue_len(), 1);
        assert!(
            !sc.read_block(page.block_addr(1), Cycles::ZERO)
                .unwrap()
                .zero_filled
        );
        let elapsed = sc
            .mmio_write(mmio::SHRED_DRAIN_REG, 0, true, Cycles::ZERO)
            .unwrap();
        assert!(elapsed > Cycles::new(1));
        assert!(
            sc.read_block(page.block_addr(1), Cycles::ZERO)
                .unwrap()
                .zero_filled
        );
    }

    #[test]
    fn user_mode_is_denied_everywhere() {
        let mut sc = sharded(2);
        assert!(matches!(
            sc.enqueue_shred(PageId::new(1), false),
            Err(Error::PrivilegeViolation { .. })
        ));
        assert!(matches!(
            sc.drain_shreds(false, Cycles::ZERO),
            Err(Error::PrivilegeViolation { .. })
        ));
        assert!(matches!(
            sc.mmio_write(mmio::SHRED_DRAIN_REG, 0, false, Cycles::ZERO),
            Err(Error::PrivilegeViolation { .. })
        ));
        assert_eq!(sc.metrics().get("ctrl.shred_denied"), Some(3));
        assert_eq!(sc.shred_queue_len(), 0, "denied enqueue must not queue");
    }

    #[test]
    fn backpressure_signals_at_capacity() {
        let mut cfg = ShardedConfig::new(2, ControllerConfig::small_test());
        cfg.shred_queue_capacity = 3;
        let mut sc = ShardedController::new(cfg).unwrap();
        assert!(!sc.enqueue_shred(PageId::new(0), true).unwrap());
        assert!(!sc.enqueue_shred(PageId::new(1), true).unwrap());
        assert!(sc.enqueue_shred(PageId::new(2), true).unwrap());
        assert_eq!(sc.shred_queue_stats().backpressure.get(), 1);
    }

    #[test]
    fn empty_drain_is_cheap_and_uncounted() {
        let mut sc = sharded(2);
        let r = sc.drain_shreds(true, Cycles::ZERO).unwrap();
        assert_eq!(r.executed, 0);
        assert_eq!(sc.shred_queue_stats().drains.get(), 0);
    }

    #[test]
    fn merged_metrics_carry_shard_gauges() {
        let mut sc = sharded(4);
        sc.enqueue_shred(PageId::new(0), true).unwrap();
        sc.drain_shreds(true, Cycles::ZERO).unwrap();
        let m = sc.metrics();
        assert_eq!(m.get("shard.count"), Some(4));
        assert_eq!(m.get("shard.queue.executed"), Some(1));
        assert_eq!(m.get("ctrl.shreds"), Some(1));
    }
}
