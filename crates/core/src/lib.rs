//! **Silent Shredder** — the paper's contribution: a secure non-volatile
//! main-memory (NVMM) controller that makes OS page shredding free.
//!
//! The controller sits between the LLC and the NVM array. All data is
//! encrypted with counter-mode AES under a processor key; each 4 KiB page
//! has a counter block `{64-bit major, 64 × 7-bit minors}` cached in a
//! 4 MiB on-chip counter cache (Table 1). The key mechanisms (§4):
//!
//! * **Shred command** ([`MemoryController::mmio_write`] to
//!   [`mmio::SHRED_REG`], kernel-mode only): increments the page's major
//!   counter and resets all its minor counters to the reserved value 0 —
//!   no data block is ever written. The page's old ciphertext becomes
//!   unintelligible under the new IVs.
//! * **Zero-fill reads**: an LLC miss whose minor counter is 0 returns a
//!   zero line without touching the NVM array.
//! * **Minor-counter discipline**: live blocks use minors 1..=127;
//!   overflow bumps the major counter and re-encrypts the page.
//!
//! The same type also implements the comparison points: a plain
//! (unencrypted) controller, a counter-mode controller *without* the
//! shredder (the evaluation baseline), direct/ECB encryption, the
//! alternative shred strategies of §4.2, and a DEUCE-style \[43\]
//! write-efficient encryption mode ([`deuce`]).
//!
//! # Examples
//!
//! ```
//! use ss_core::{ControllerConfig, MemoryController};
//! use ss_common::{Cycles, PageId};
//!
//! let mut mc = MemoryController::new(ControllerConfig::small_test())?;
//! let page = PageId::new(3);
//! let addr = page.block_addr(0);
//!
//! mc.write_block(addr, &[0xAB; 64], false, Cycles::ZERO)?;
//! assert_eq!(mc.read_block(addr, Cycles::ZERO)?.data, [0xAB; 64]);
//!
//! // Shred the page: zero cost, and subsequent reads are zero-filled.
//! mc.shred_page(page, true)?;
//! let read = mc.read_block(addr, Cycles::ZERO)?;
//! assert!(read.zero_filled);
//! assert_eq!(read.data, [0u8; 64]);
//! # Ok::<(), ss_common::Error>(())
//! ```

#![forbid(unsafe_code)]

pub mod channel;
pub mod config;
pub mod controller;
pub mod counters;
pub mod deuce;
pub mod facade;
pub mod heal;
pub mod interleave;
pub mod mmio;
pub mod persist;
pub mod protection;
pub mod shard;
pub mod wqueue;

pub use channel::ChannelSched;
pub use config::{
    ControllerConfig, ControllerConfigBuilder, CounterPersistence, EncryptionMode, PersistDomain,
    ProtectionMode, ShardedConfig, ShardedConfigBuilder, ShredStrategy,
};
pub use controller::{ControllerStats, MemoryController, ReadResult};
pub use counters::CounterBlock;
pub use facade::{FaultPort, Inspect};
pub use heal::{HealthStats, RetryPolicy, SparePool};
pub use interleave::Interleave;
pub use mmio::{MmioError, MmioOp, SHRED_DRAIN_REG, SHRED_ENQ_REG, SHRED_REG};
pub use persist::{CrashCut, RecoveryReport, SeqTag};
pub use protection::{MemoryProtection, ProtStats};
pub use shard::{DrainReport, PerShard, ShardedController, ShredQueueStats};
pub use wqueue::{WriteQueue, WriteQueueConfig, WriteQueueStats};
// Re-exported because `ControllerConfig::nvm_ecc` is part of this
// crate's public configuration surface.
pub use ss_nvm::EccConfig;
