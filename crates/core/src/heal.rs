//! Self-healing policy state: read-retry, spare-pool remapping, and
//! quarantine for the NVM data region.
//!
//! The paper motivates Silent Shredder with NVM's limited write
//! endurance (§1, §6.3); this module gives the controller the recovery
//! machinery a production part would pair with it. Three layers, in
//! escalation order:
//!
//! 1. **Retry** ([`RetryPolicy`]): a transient (soft) read error is
//!    re-read up to `max_retries` times with bounded, deterministic
//!    exponential backoff. Soft errors do not repeat, so retries almost
//!    always clear them.
//! 2. **Remap** ([`SparePool`]): a line whose *permanent* weak cells are
//!    still within the ECC correction bound is rescued — decrypted,
//!    re-encrypted under a fresh IV (minor-counter bump), and moved to a
//!    spare line, with the counter + Merkle update committing the move.
//! 3. **Quarantine**: a line that is uncorrectable or cannot get a spare
//!    degrades loudly — every access returns
//!    [`ss_common::Error::Quarantined`] instead of silent garbage. A
//!    later full-line write may revive it if a spare has become
//!    moot/available.
//!
//! The spare pool and quarantine list model the controller's persistent
//! metadata: they survive [`power_loss`](crate::MemoryController::power_loss)
//! like the remap tables in real NVDIMM firmware do.

use std::collections::{BTreeMap, BTreeSet};

use ss_common::{BlockAddr, Counter, Cycles, LINE_SIZE};

/// Bounded deterministic retry policy for transient read errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-reads after a failed read (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Cycles,
}

impl RetryPolicy {
    /// Backoff charged before retry `attempt` (1-based):
    /// `base * 2^(attempt-1)`, saturating.
    pub fn backoff(&self, attempt: u32) -> Cycles {
        let shift = attempt.saturating_sub(1).min(16);
        Cycles::new(self.backoff_base.raw().saturating_mul(1 << shift))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: Cycles::new(16),
        }
    }
}

/// Healing activity counters, exposed through
/// [`ControllerStats`](crate::ControllerStats).
#[derive(Debug, Clone, Default)]
pub struct HealthStats {
    /// Reads the device ECC corrected on the controller's behalf.
    pub ecc_corrected: Counter,
    /// Read retries issued after an uncorrectable transient error.
    pub retries: Counter,
    /// Reads that succeeded only after at least one retry.
    pub retried_ok: Counter,
    /// Total deterministic backoff charged across retries, in cycles.
    pub backoff_cycles: u64,
    /// Lines remapped into the spare pool (including write-path revives).
    pub remaps: Counter,
    /// Remap attempts that failed (spare pool exhausted or the rescue
    /// read was already uncorrectable).
    pub remap_failures: Counter,
    /// Quarantine events (lines retired without a successful remap).
    pub quarantined: Counter,
    /// Lines read by the background scrubber.
    pub scrub_reads: Counter,
    /// Scrub passes that found and healed (or retired) a degrading line.
    pub scrub_heals: Counter,
}

/// The bad-line remap table: a pool of spare lines appended after the
/// counter region, a map from failed device slots to their spare, and
/// the quarantine list for lines that could not be saved.
#[derive(Debug, Clone)]
pub struct SparePool {
    /// Device byte address of the first spare line.
    base: u64,
    /// Number of spare lines in the pool.
    total: u64,
    /// Bump allocator over the pool (spares are never reused: a spare
    /// that itself wears out is replaced by the next free slot).
    next_free: u64,
    /// Failed device line → spare device line.
    map: BTreeMap<u64, u64>,
    /// Device lines that failed remap; every access errors loudly.
    quarantined: BTreeSet<u64>,
}

impl SparePool {
    /// An empty pool of `lines` spares starting at device address `base`.
    pub fn new(base: u64, lines: u64) -> Self {
        SparePool {
            base,
            total: lines,
            next_free: 0,
            map: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// Where accesses to `dev` actually land (identity when not
    /// remapped).
    pub fn redirect(&self, dev: BlockAddr) -> BlockAddr {
        match self.map.get(&dev.raw()) {
            Some(spare) => BlockAddr::new(*spare),
            None => dev,
        }
    }

    /// Whether `dev` has been remapped to a spare.
    pub fn is_remapped(&self, dev: BlockAddr) -> bool {
        self.map.contains_key(&dev.raw())
    }

    /// Assigns the next free spare to `dev` (replacing any previous
    /// assignment, so a worn-out spare can itself be retired). Returns
    /// the spare's device address, or `None` when the pool is exhausted.
    pub fn allocate(&mut self, dev: BlockAddr) -> Option<BlockAddr> {
        if self.next_free >= self.total {
            return None;
        }
        let spare = self.base + self.next_free * LINE_SIZE as u64;
        self.next_free += 1;
        self.map.insert(dev.raw(), spare);
        Some(BlockAddr::new(spare))
    }

    /// Rolls back an interrupted allocation: removes the `dev → spare`
    /// redirect installed by [`SparePool::allocate`] and, when the spare
    /// was the most recent allocation, returns the slot to the bump
    /// allocator. Used only by crash recovery — a committed remap is
    /// never undone. Returns whether a redirect was removed.
    pub fn undo_remap(&mut self, dev: BlockAddr, spare: BlockAddr) -> bool {
        match self.map.get(&dev.raw()) {
            Some(s) if *s == spare.raw() => {}
            _ => return false,
        }
        self.map.remove(&dev.raw());
        let last = self.base + self.next_free.saturating_sub(1) * LINE_SIZE as u64;
        if self.next_free > 0 && spare.raw() == last {
            self.next_free -= 1;
        }
        true
    }

    /// Puts `dev` on the quarantine list.
    pub fn quarantine(&mut self, dev: BlockAddr) {
        self.quarantined.insert(dev.raw());
    }

    /// Removes `dev` from the quarantine list (a full-line write revived
    /// it through a fresh spare).
    pub fn unquarantine(&mut self, dev: BlockAddr) {
        self.quarantined.remove(&dev.raw());
    }

    /// Whether `dev` is quarantined.
    pub fn is_quarantined(&self, dev: BlockAddr) -> bool {
        self.quarantined.contains(&dev.raw())
    }

    /// Number of lines currently remapped to spares.
    pub fn remapped_count(&self) -> u64 {
        self.map.len() as u64
    }

    /// Number of lines currently quarantined.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Spare lines still unallocated.
    pub fn free(&self) -> u64 {
        self.total - self.next_free
    }

    /// Device byte address of the first spare line.
    pub fn base(&self) -> u64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Cycles::new(16));
        assert_eq!(p.backoff(2), Cycles::new(32));
        assert_eq!(p.backoff(3), Cycles::new(64));
        // Deterministic: same attempt, same backoff.
        assert_eq!(p.backoff(3), p.backoff(3));
    }

    #[test]
    fn pool_allocates_redirects_and_exhausts() {
        let mut pool = SparePool::new(0x1000, 2);
        let a = BlockAddr::new(0);
        let b = BlockAddr::new(64);
        assert_eq!(pool.redirect(a), a, "identity before remap");
        let s0 = pool.allocate(a).unwrap();
        assert_eq!(s0.raw(), 0x1000);
        assert_eq!(pool.redirect(a), s0);
        assert!(pool.is_remapped(a));
        assert_eq!(pool.free(), 1);
        // Re-allocating the same line retires its old spare.
        let s1 = pool.allocate(a).unwrap();
        assert_eq!(s1.raw(), 0x1000 + 64);
        assert_eq!(pool.redirect(a), s1);
        assert_eq!(pool.free(), 0);
        assert!(pool.allocate(b).is_none(), "pool should be exhausted");
        assert_eq!(pool.remapped_count(), 1);
    }

    #[test]
    fn undo_remap_rolls_back_latest_allocation() {
        let mut pool = SparePool::new(0x1000, 2);
        let a = BlockAddr::new(0);
        let s0 = pool.allocate(a).unwrap();
        assert!(pool.undo_remap(a, s0));
        assert_eq!(pool.redirect(a), a, "redirect removed");
        assert_eq!(pool.free(), 2, "slot returned to the bump allocator");
        // Mismatched spare (stale journal entry) is a no-op.
        let s1 = pool.allocate(a).unwrap();
        assert!(!pool.undo_remap(a, BlockAddr::new(0x00DE_ADC0)));
        assert_eq!(pool.redirect(a), s1);
        assert!(!pool.undo_remap(BlockAddr::new(64), s1), "unmapped line");
    }

    #[test]
    fn quarantine_roundtrip() {
        let mut pool = SparePool::new(0x1000, 1);
        let a = BlockAddr::new(128);
        assert!(!pool.is_quarantined(a));
        pool.quarantine(a);
        assert!(pool.is_quarantined(a));
        assert_eq!(pool.quarantined_count(), 1);
        pool.unquarantine(a);
        assert!(!pool.is_quarantined(a));
    }
}
