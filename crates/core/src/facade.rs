//! Read-only and fault-injection facades over [`MemoryController`].
//!
//! The controller's public surface is its *production* operations
//! (read/write/shred/fence/recover…). Everything else lives behind two
//! narrow ports:
//!
//! * [`MemoryController::inspect`] → [`Inspect`]: read-only observers —
//!   statistics, the unified metrics registry, trace records, healing
//!   and cache state. Taking `&self` only, an `Inspect` can never
//!   perturb the simulation, so harnesses and reports may probe freely
//!   between operations without risking byte-level divergence.
//! * [`MemoryController::faults`] → [`FaultPort`]: tamper/inject/peek
//!   hooks used by security and fault-injection tests. These mutate
//!   device state on purpose; keeping them off the controller proper
//!   makes any production call site that touches them stick out in
//!   review (and in `ss-lint`'s SEC-002 sweep).

use ss_common::{BlockAddr, PageId, Result};
use ss_crypto::Line;
use ss_trace::{MetricsRegistry, StageProfile, TraceRecord};

use crate::controller::{ControllerStats, MemoryController};
use crate::wqueue::WriteQueueStats;

/// Read-only view of a controller. Obtained via
/// [`MemoryController::inspect`]; lives only as long as the borrow.
#[derive(Debug)]
pub struct Inspect<'a> {
    mc: &'a MemoryController,
}

impl<'a> Inspect<'a> {
    pub(crate) fn new(mc: &'a MemoryController) -> Self {
        Inspect { mc }
    }

    /// Controller statistics (reads, writes, shreds, healing…).
    pub fn stats(&self) -> &'a ControllerStats {
        self.mc.stats()
    }

    /// Counter-cache hit/miss/eviction counters.
    pub fn counter_cache_stats(&self) -> &'a ss_cache::CacheStats {
        self.mc.counter_cache_stats()
    }

    /// Write-queue counters, when a queue is configured.
    pub fn write_queue_stats(&self) -> Option<&'a WriteQueueStats> {
        self.mc.write_queue_stats()
    }

    /// Entries currently waiting in the write queue (0 when none).
    pub fn write_queue_len(&self) -> usize {
        self.mc.write_queue_len()
    }

    /// Device-level statistics of the backing NVM array.
    pub fn nvm_stats(&self) -> &'a ss_nvm::NvmStats {
        self.mc.nvm().stats()
    }

    /// Total line writes the NVM array has accepted.
    pub fn nvm_writes(&self) -> u64 {
        self.mc.nvm_writes()
    }

    /// `(address, writes)` of the most-worn NVM line, if any line has
    /// been written.
    pub fn nvm_max_wear(&self) -> Option<(BlockAddr, u64)> {
        self.mc.nvm().wear().max_wear()
    }

    /// Whether `page`'s counter line sits dirty in the counter cache.
    pub fn counter_line_dirty(&self, page: PageId) -> bool {
        self.mc.counter_line_dirty(page)
    }

    /// Lines currently remapped onto spares.
    pub fn remapped_lines(&self) -> u64 {
        self.mc.remapped_lines()
    }

    /// Lines retired as unrecoverable.
    pub fn quarantined_lines(&self) -> u64 {
        self.mc.quarantined_lines()
    }

    /// Spare lines still available for remapping.
    pub fn spare_lines_free(&self) -> u64 {
        self.mc.spare_lines_free()
    }

    /// Whether the line holding `addr` is quarantined.
    pub fn is_line_quarantined(&self, addr: BlockAddr) -> bool {
        self.mc.is_line_quarantined(addr)
    }

    /// Whether `page` is registered as enclave-owned.
    pub fn is_enclave_page(&self, page: PageId) -> bool {
        self.mc.is_enclave_page(page)
    }

    /// Per-stage cycle attribution accumulated since the last
    /// [`MemoryController::reset_stats`].
    pub fn profile(&self) -> &'a StageProfile {
        self.mc.profile()
    }

    /// Retained trace records, oldest first (empty when tracing is
    /// disabled).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.mc.trace_records()
    }

    /// Lifetime `(emitted, dropped)` trace-event totals.
    pub fn trace_totals(&self) -> (u64, u64) {
        self.mc.trace_totals()
    }

    /// Whether event tracing is recording.
    pub fn trace_enabled(&self) -> bool {
        self.mc.trace_enabled()
    }

    /// Snapshot of every statistic under the workspace's stable dotted
    /// names (DESIGN.md §10).
    pub fn metrics(&self) -> MetricsRegistry {
        self.mc.metrics()
    }

    /// Snapshot of the on-chip Merkle root (`None` when integrity is
    /// disabled). Part of the persisted-state surface the adversary
    /// harness compares across power cycles: counter lines in NVM can be
    /// rolled back, this root cannot.
    pub fn merkle_root(&self) -> Option<ss_crypto::Digest> {
        self.mc.merkle_root()
    }

    /// Lifetime count of persist steps — durable NVM line writes issued
    /// through the controller's persist choke point. The crash harness
    /// runs a victim operation once against an unarmed twin to take this
    /// census, then replays it with a cut armed at each step in turn
    /// (DESIGN.md §13). Ticks under both persistence domains so the
    /// census is domain-independent.
    pub fn persist_steps(&self) -> u64 {
        self.mc.persist_steps()
    }

    /// Which [`crate::protection::MemoryProtection`] backend this
    /// controller runs. Harness code branches on this instead of
    /// pattern-matching counter-cache or encryption internals.
    pub fn protection_kind(&self) -> crate::config::ProtectionMode {
        self.mc.config().protection
    }

    /// NVM lines of protection metadata the active backend maintains
    /// (counter lines under counter mode; liveness + mask lines under
    /// the scattered backend). Backend-neutral sizing for reports and
    /// cold-scan bookkeeping.
    pub fn prot_metadata_lines(&self) -> u64 {
        crate::protection::backend(self.mc.config().protection).metadata_lines(self.mc)
    }
}

/// Fault-injection and forensic port. Obtained via
/// [`MemoryController::faults`]; every method either corrupts simulated
/// hardware state or peeks past the encryption boundary, so nothing
/// here belongs in a production code path.
#[derive(Debug)]
pub struct FaultPort<'a> {
    mc: &'a mut MemoryController,
}

impl<'a> FaultPort<'a> {
    pub(crate) fn new(mc: &'a mut MemoryController) -> Self {
        FaultPort { mc }
    }

    /// Reads every written line raw — the stolen-DIMM attack (§3).
    /// Covers the data region *and* the spare pool (remapped lines
    /// physically live there), but not the counter region.
    pub fn cold_scan_data(&self) -> Vec<(BlockAddr, Line)> {
        self.mc.cold_scan_data()
    }

    /// Cold scan restricted to the spare-line pool: the residue surface
    /// a remap-probe attack inspects.
    pub fn cold_scan_spares(&self) -> Vec<(BlockAddr, Line)> {
        self.mc.cold_scan_spares()
    }

    /// Cold scan of the persisted counter region, keyed by owning page —
    /// the state a rollback attacker captures at one power cycle and
    /// replays at the next.
    pub fn cold_scan_counters(&self) -> Vec<(PageId, Line)> {
        self.mc.cold_scan_counters()
    }

    /// Overwrites a data line in the array behind the controller's back.
    pub fn nvm_tamper(&mut self, addr: BlockAddr, line: Line) {
        self.mc.nvm_tamper(addr, line);
    }

    /// Raw bytes of `page`'s counter line as stored in the array.
    pub fn nvm_peek_counter(&self, page: PageId) -> Line {
        self.mc.nvm_peek_counter(page)
    }

    /// Raw stored bytes (ciphertext) of the data line at `addr`,
    /// bypassing decryption, stats and timing.
    pub fn nvm_peek(&self, addr: BlockAddr) -> Line {
        self.mc.nvm().peek(addr)
    }

    /// Overwrites `page`'s counter line in the array (integrity attack).
    pub fn tamper_counter_line(&mut self, page: PageId, line: Line) {
        self.mc.tamper_counter_line(page, line);
    }

    /// Discards the counter cache without writeback (crash modelling).
    pub fn drop_counter_cache(&mut self) {
        self.mc.drop_counter_cache();
    }

    /// Discards one page's cached counter line without writeback.
    /// Returns whether it was resident.
    pub fn drop_counter_cache_line(&mut self, page: PageId) -> bool {
        self.mc.drop_counter_cache_line(page)
    }

    /// Writes back one page's counter line if dirty. Returns whether a
    /// writeback happened.
    ///
    /// # Errors
    ///
    /// Propagates NVM write failures.
    pub fn flush_counter_line(&mut self, page: PageId) -> Result<bool> {
        self.mc.flush_counter_line(page)
    }

    /// Decrypts a line without touching stats or timing (test oracle).
    ///
    /// # Errors
    ///
    /// Propagates read/decrypt failures.
    pub fn peek_plaintext(&mut self, addr: BlockAddr) -> Result<Line> {
        self.mc.peek_plaintext(addr)
    }

    /// Flips one stored bit of a data line (persistent fault).
    pub fn flip_data_bit(&mut self, addr: BlockAddr, bit: usize) {
        self.mc.flip_data_bit(addr, bit);
    }

    /// Flips one stored bit of `page`'s counter line.
    pub fn flip_counter_bit(&mut self, page: PageId, bit: usize) {
        self.mc.flip_counter_bit(page, bit);
    }

    /// Arms a one-shot transient error on the next read of `addr`.
    pub fn inject_data_read_error(&mut self, addr: BlockAddr, flips: u32) {
        self.mc.inject_data_read_error(addr, flips);
    }

    /// Disarms a pending injected read error. Returns whether one was
    /// armed.
    pub fn clear_injected_read_error(&mut self, addr: BlockAddr) -> bool {
        self.mc.clear_injected_read_error(addr)
    }

    /// Marks the line at `addr` permanently failed with `weak_bits`
    /// inverted cells.
    pub fn force_line_failure(&mut self, addr: BlockAddr, weak_bits: u32) {
        self.mc.force_line_failure(addr, weak_bits);
    }

    /// Arms a one-shot crash cut: the persist sequence is severed once
    /// the lifetime persist-step count reaches `at_step`, leaving the
    /// first `torn_bytes` of that step's line written (rounded down to
    /// an 8-byte torn-write granule; 0 = the step is dropped whole).
    /// Every operation after the cut fails with
    /// [`ss_common::Error::PowerCut`] until
    /// [`MemoryController::power_loss`] reboots the machine. Under the
    /// eADR domain the cut never fires — flush-on-fail completes every
    /// step — so arming is a no-op there by construction.
    pub fn arm_crash_cut(&mut self, at_step: u64, torn_bytes: usize) {
        self.mc.arm_crash_cut(crate::persist::CrashCut {
            at_step,
            torn_bytes,
        });
    }

    /// Disarms a pending crash cut that has not fired yet.
    pub fn disarm_crash_cut(&mut self) {
        self.mc.disarm_crash_cut();
    }

    /// Whether an armed cut has fired (the machine is "off" — every
    /// operation errors until [`MemoryController::power_loss`]).
    pub fn crash_cut_fired(&self) -> bool {
        self.mc.crash_cut_fired()
    }
}

impl MemoryController {
    /// Read-only observer port: statistics, metrics, traces, healing
    /// state. See [`Inspect`].
    pub fn inspect(&self) -> Inspect<'_> {
        Inspect::new(self)
    }

    /// Fault-injection and forensic port for tests. See [`FaultPort`].
    pub fn faults(&mut self) -> FaultPort<'_> {
        FaultPort::new(self)
    }
}

impl crate::shard::ShardedController {
    /// Read-only observer port into shard `s` (`None` when out of
    /// range). Shard-local views: addresses and capacities are in the
    /// shard's own slice of the address space.
    pub fn inspect_shard(&self, s: usize) -> Option<Inspect<'_>> {
        self.shard(s).map(Inspect::new)
    }

    /// Fault-injection and forensic port into shard `s` (`None` when
    /// out of range). Shard-local views, like [`Self::inspect_shard`]:
    /// the adversary harness translates global addresses through the
    /// [`crate::Interleave`] before poking a shard.
    pub fn faults_shard(&mut self, s: usize) -> Option<FaultPort<'_>> {
        self.shard_mut(s).map(FaultPort::new)
    }
}
