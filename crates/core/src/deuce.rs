//! DEUCE-style write-efficient counter-mode encryption (Young et al.
//! \[43\]).
//!
//! DEUCE's observation: on a typical write-back only a few words of the
//! line changed, but full re-encryption diffuses the change over all 512
//! bits, defeating Data-Comparison Write. DEUCE therefore re-encrypts
//! only the words modified since the last *epoch*, leaving the other
//! words' ciphertext bit-identical so DCW can skip them.
//!
//! This module implements a per-16-B-chunk variant: each block tracks an
//! `epoch_minor` and a modified bitmap; modified chunks use the block's
//! current minor counter, unmodified chunks still decrypt under the epoch
//! minor. Every `epoch` writes the whole line is re-encrypted and the
//! epoch advances.
//!
//! The paper notes Silent Shredder is *orthogonal* to DEUCE: DEUCE makes
//! unavoidable writes cheaper, the shredder removes shredding writes
//! entirely. The `ablation_dcw_fnw` bench quantifies the combination.

use ss_common::LINE_SIZE;
use ss_crypto::{CtrEngine, Iv, Line};

/// Number of 16 B chunks per line.
pub const CHUNKS: usize = LINE_SIZE / 16;

/// Per-block DEUCE metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeuceMeta {
    /// Minor counter under which unmodified chunks are encrypted.
    pub epoch_minor: u8,
    /// Which chunks have been re-encrypted (with the current minor) since
    /// the epoch began.
    pub modified: [bool; CHUNKS],
}

impl DeuceMeta {
    /// Fresh metadata at the start of an epoch.
    pub fn new_epoch(minor: u8) -> Self {
        DeuceMeta {
            epoch_minor: minor,
            modified: [false; CHUNKS],
        }
    }

    /// The minor counter chunk `i` is currently encrypted under.
    pub fn chunk_minor(&self, i: usize, current_minor: u8) -> u8 {
        if self.modified[i] {
            current_minor
        } else {
            self.epoch_minor
        }
    }
}

/// Generates the 16 B pad for one chunk under a specific minor.
fn chunk_pad(
    engine: &CtrEngine,
    page_id: u64,
    block: u8,
    major: u64,
    minor: u8,
    chunk: u8,
) -> [u8; 16] {
    // Reuse the line-pad machinery on a per-chunk basis.
    let iv = Iv::new(page_id, block, major, minor);
    let full = engine.pad(&iv);
    let mut out = [0u8; 16];
    out.copy_from_slice(&full[chunk as usize * 16..(chunk as usize + 1) * 16]);
    out
}

/// Encrypts a line where each chunk may use a different minor counter.
pub fn encrypt_chunked(
    engine: &CtrEngine,
    page_id: u64,
    block: u8,
    major: u64,
    chunk_minors: [u8; CHUNKS],
    plain: &Line,
) -> Line {
    let mut out = *plain;
    for c in 0..CHUNKS {
        let pad = chunk_pad(engine, page_id, block, major, chunk_minors[c], c as u8);
        for (o, p) in out[c * 16..(c + 1) * 16].iter_mut().zip(pad.iter()) {
            *o ^= p;
        }
    }
    out
}

/// Decrypts a line where each chunk may use a different minor counter
/// (counter mode is an involution).
pub fn decrypt_chunked(
    engine: &CtrEngine,
    page_id: u64,
    block: u8,
    major: u64,
    chunk_minors: [u8; CHUNKS],
    cipher: &Line,
) -> Line {
    encrypt_chunked(engine, page_id, block, major, chunk_minors, cipher)
}

/// Which chunks of `new` differ from `old`.
pub fn changed_chunks(old: &Line, new: &Line) -> [bool; CHUNKS] {
    let mut out = [false; CHUNKS];
    for (c, flag) in out.iter_mut().enumerate() {
        *flag = old[c * 16..(c + 1) * 16] != new[c * 16..(c + 1) * 16];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CtrEngine {
        CtrEngine::new([0x42; 16])
    }

    #[test]
    fn chunked_roundtrip_uniform_minors() {
        let e = engine();
        let plain = [0x5A; LINE_SIZE];
        let minors = [3u8; CHUNKS];
        let ct = encrypt_chunked(&e, 7, 9, 11, minors, &plain);
        assert_eq!(decrypt_chunked(&e, 7, 9, 11, minors, &ct), plain);
        // Uniform chunk minors must agree with the plain line engine.
        let iv = Iv::new(7, 9, 11, 3);
        assert_eq!(e.encrypt_line(&iv, &plain), ct);
    }

    #[test]
    fn chunked_roundtrip_mixed_minors() {
        let e = engine();
        let mut plain = [0u8; LINE_SIZE];
        for (i, b) in plain.iter_mut().enumerate() {
            *b = i as u8;
        }
        let minors = [1, 9, 1, 4];
        let ct = encrypt_chunked(&e, 1, 2, 3, minors, &plain);
        assert_eq!(decrypt_chunked(&e, 1, 2, 3, minors, &ct), plain);
        // Wrong minor on one chunk corrupts exactly that chunk.
        let bad = decrypt_chunked(&e, 1, 2, 3, [1, 8, 1, 4], &ct);
        assert_eq!(bad[0..16], plain[0..16]);
        assert_ne!(bad[16..32], plain[16..32]);
        assert_eq!(bad[32..48], plain[32..48]);
    }

    #[test]
    fn unmodified_chunks_keep_identical_ciphertext() {
        // The whole point of DEUCE: rewriting with one modified chunk
        // leaves the other chunks' ciphertext bit-identical.
        let e = engine();
        let old_plain = [0xAA; LINE_SIZE];
        let epoch_minor = 2u8;
        let ct_old = encrypt_chunked(&e, 5, 5, 5, [epoch_minor; CHUNKS], &old_plain);

        let mut new_plain = old_plain;
        new_plain[0] ^= 0xFF; // chunk 0 modified
        let new_minor = 3u8;
        let changed = changed_chunks(&old_plain, &new_plain);
        assert_eq!(changed, [true, false, false, false]);

        let mut minors = [epoch_minor; CHUNKS];
        minors[0] = new_minor;
        let mut ct_new = encrypt_chunked(&e, 5, 5, 5, minors, &new_plain);
        // Unmodified chunks: reuse the old ciphertext bytes verbatim.
        ct_new[16..].copy_from_slice(&ct_old[16..]);

        assert_eq!(ct_old[16..], ct_new[16..], "no diffusion outside chunk 0");
        assert_ne!(ct_old[..16], ct_new[..16]);
        assert_eq!(decrypt_chunked(&e, 5, 5, 5, minors, &ct_new), new_plain);
    }

    #[test]
    fn meta_tracks_chunk_minors() {
        let mut m = DeuceMeta::new_epoch(4);
        assert_eq!(m.chunk_minor(0, 9), 4);
        m.modified[0] = true;
        assert_eq!(m.chunk_minor(0, 9), 9);
        assert_eq!(m.chunk_minor(1, 9), 4);
    }

    #[test]
    fn changed_chunks_detects_all() {
        let a = [0u8; LINE_SIZE];
        let mut b = a;
        b[17] = 1;
        b[63] = 1;
        assert_eq!(changed_chunks(&a, &b), [false, true, false, true]);
        assert_eq!(changed_chunks(&a, &a), [false; CHUNKS]);
    }
}
