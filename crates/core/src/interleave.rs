//! Deterministic page→shard interleaving.
//!
//! A sharded controller splits its address space across `n` independent
//! shards, each owning its own counter state, write queue, spare pool
//! and Merkle subtree. The mapping is page-granular — counters, shreds
//! and integrity all operate on whole pages — and round-robin:
//!
//! * global page `p` lives on shard `p mod n`,
//! * as that shard's local page `p div n`.
//!
//! Round-robin (rather than contiguous range) interleaving means a
//! contiguous run of pages — exactly what a VM teardown frees — spreads
//! evenly across every shard, so a batched shred drain parallelises
//! across all channels instead of hammering one.
//!
//! The map is a bijection between global pages and `(shard, local)`
//! pairs (see `global/local` round-trip tests and the property test in
//! `tests/sharding.rs`), so every block belongs to exactly one shard
//! and no two shards ever alias the same storage.

use ss_common::{BlockAddr, Error, PageId, Result};

/// The page→shard map of a sharded controller. Pure arithmetic: the
/// same inputs map identically on every platform and every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleave {
    shards: u32,
}

impl Interleave {
    /// Creates an interleaving over `shards` shards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `shards` is zero.
    pub fn new(shards: u32) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidConfig {
                detail: "sharded controller needs at least one shard".into(),
            });
        }
        Ok(Interleave { shards })
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `page`.
    pub fn shard_of_page(&self, page: PageId) -> u32 {
        (page.raw() % u64::from(self.shards)) as u32
    }

    /// `page`'s frame number within its owning shard's local space.
    pub fn local_page(&self, page: PageId) -> PageId {
        PageId::new(page.raw() / u64::from(self.shards))
    }

    /// Inverse of ([`Interleave::shard_of_page`],
    /// [`Interleave::local_page`]): the global page for a shard-local
    /// frame.
    pub fn global_page(&self, shard: u32, local: PageId) -> PageId {
        PageId::new(local.raw() * u64::from(self.shards) + u64::from(shard))
    }

    /// The shard owning the page containing `addr`.
    pub fn shard_of_block(&self, addr: BlockAddr) -> u32 {
        self.shard_of_page(addr.page())
    }

    /// `addr` translated into its owning shard's local address space
    /// (same block index, local frame number).
    pub fn local_block(&self, addr: BlockAddr) -> BlockAddr {
        self.local_page(addr.page())
            .block_addr(addr.block_in_page())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_is_identity() {
        let il = Interleave::new(1).unwrap();
        for p in [0u64, 1, 7, 1000] {
            let page = PageId::new(p);
            assert_eq!(il.shard_of_page(page), 0);
            assert_eq!(il.local_page(page), page);
            assert_eq!(il.global_page(0, page), page);
        }
    }

    #[test]
    fn round_robin_and_roundtrip() {
        let il = Interleave::new(4).unwrap();
        assert_eq!(il.shard_of_page(PageId::new(0)), 0);
        assert_eq!(il.shard_of_page(PageId::new(1)), 1);
        assert_eq!(il.shard_of_page(PageId::new(5)), 1);
        assert_eq!(il.local_page(PageId::new(5)), PageId::new(1));
        for p in 0..256u64 {
            let page = PageId::new(p);
            let (s, l) = (il.shard_of_page(page), il.local_page(page));
            assert_eq!(il.global_page(s, l), page, "not a bijection at {p}");
        }
    }

    #[test]
    fn blocks_follow_their_page() {
        let il = Interleave::new(3).unwrap();
        let page = PageId::new(7);
        for addr in page.blocks() {
            assert_eq!(il.shard_of_block(addr), il.shard_of_page(page));
            let local = il.local_block(addr);
            assert_eq!(local.page(), il.local_page(page));
            assert_eq!(local.block_in_page(), addr.block_in_page());
        }
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(Interleave::new(0).is_err());
    }
}
