//! The secure NVMM controller (Fig. 6 and Fig. 7 of the paper).

use std::collections::BTreeMap;

use ss_cache::{CacheConfig, SetAssocCache};
use ss_common::{
    BlockAddr, Counter, Cycles, DetRng, Error, MemStats, PageId, PhysAddr, Result, BLOCKS_PER_PAGE,
    LINE_SIZE,
};
use ss_crypto::{CtrEngine, EcbEngine, Line, MerkleTree};
use ss_nvm::{LineRead, NvmConfig, NvmDevice};
use ss_trace::{
    export_latency, MetricsRegistry, Stage, StageProfile, TraceEvent, TraceRecord, Tracer,
};

use crate::channel::ChannelSched;
use crate::config::{
    ControllerConfig, CounterPersistence, EncryptionMode, PersistDomain, ProtectionMode,
};
use crate::counters::{BumpOutcome, CounterBlock};
use crate::deuce::{self, DeuceMeta, CHUNKS};
use crate::heal::{HealthStats, SparePool};
use crate::mmio;
use crate::persist::{
    self, CrashCut, EntryKind, JournalEntry, PersistState, RecoveryReport, SeqTag,
};
use crate::protection::ProtStats;
use crate::wqueue::WriteQueue;
use ss_nvm::StartGap;

/// Domain-separation constant folded into the scattered backend's
/// share-stream seed, so share randomness never collides with the NVM
/// fault stream even under identical seeds.
const SHARE_DOMAIN: u64 = 0x5343_4154_5445_5244;

/// Outcome of a demand read serviced by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// The plaintext line delivered to the LLC.
    pub data: Line,
    /// Latency as seen by the LLC miss (queueing included).
    pub latency: Cycles,
    /// `true` when the zero-fill path served the read without touching
    /// the NVM array (Fig. 7, step 3b).
    pub zero_filled: bool,
}

/// Controller-level statistics.
#[derive(Debug, Clone, Default)]
pub struct ControllerStats {
    /// Classified memory traffic and read latency.
    pub mem: MemStats,
    /// Shred commands executed.
    pub shreds: Counter,
    /// Page re-encryptions caused by minor-counter overflow.
    pub reencryptions: Counter,
    /// Shred commands rejected for privilege reasons.
    pub shred_denied: Counter,
    /// Lines moved over the memory bus (data + counters, reads + writes).
    pub bus_transfers: Counter,
    /// Self-healing activity: ECC corrections, retries, remaps,
    /// quarantines, and scrubber work.
    pub health: HealthStats,
    /// Scattered two-share backend activity (all-zero under counter
    /// mode, where no share traffic exists).
    pub prot: ProtStats,
}

/// The memory controller. See the crate docs for the mechanism overview.
#[derive(Debug)]
pub struct MemoryController {
    config: ControllerConfig,
    nvm: NvmDevice,
    counter_cache: SetAssocCache<CounterBlock>,
    ctr: Option<CtrEngine>,
    ecb: Option<EcbEngine>,
    merkle: Option<MerkleTree>,
    channels: ChannelSched,
    deuce_meta: BTreeMap<u64, DeuceMeta>,
    stats: ControllerStats,
    /// NVM byte offset where the counter region begins.
    counter_base: u64,
    /// Start-Gap remapper over the data lines (when wear levelling on).
    start_gap: Option<StartGap>,
    /// Pages owned by secure enclaves (§4.1): their deallocation shred is
    /// triggered by hardware, not the (possibly untrusted) OS.
    enclave_pages: std::collections::BTreeSet<u64>,
    /// Optional write queue (read priority + forwarding). Entries hold
    /// *device-space* addresses and ciphertext, inside the ADR
    /// persistence domain.
    wqueue: Option<WriteQueue>,
    /// Set when a crash dropped dirty counters (volatile write-back).
    counters_lost: bool,
    /// Bad-line remap table + quarantine list (persistent controller
    /// metadata, like real NVDIMM firmware remap tables).
    heal: SparePool,
    /// NVM byte offset where the spare-line pool begins.
    spare_base: u64,
    /// Logical data lines flagged for remap during the current operation
    /// (ECC-corrected reads of permanently weak lines); processed at
    /// operation end so in-flight counter snapshots stay coherent.
    pending_heal: Vec<BlockAddr>,
    /// Next data line the background scrubber will visit.
    scrub_cursor: u64,
    /// Demand writes since the scrubber last ran.
    writes_since_scrub: u64,
    /// Event tracer ([`Tracer::Null`] unless `config.trace_depth` is
    /// set — the null arm never constructs events).
    tracer: Tracer,
    /// Per-stage cycle attribution. Always on: a charge is two integer
    /// additions, and every future hot-path optimisation needs this
    /// baseline to measure against.
    profile: StageProfile,
    /// Simulated time of the public operation currently executing, so
    /// deep helpers (retry loops, deferred heals) can stamp trace
    /// events without threading `now` through every private signature.
    op_now: Cycles,
    /// NVM byte offset of the ordering-journal region (== device end
    /// under eADR, where no journal is allocated).
    journal_base: u64,
    /// Persist-step counter, armed crash cut, and the volatile mirror of
    /// the open journal sequence (see the [`persist`] module docs).
    persist: PersistState,
    /// NVM byte offset of the scattered backend's mask-share region
    /// (== device end under counter mode, where no masks are allocated).
    /// The region models a physically separate DIMM (DESIGN.md §15).
    mask_base: u64,
    /// Deterministic share stream for the scattered backend (a DRBG in
    /// hardware). Seeded from the processor key, the domain constant,
    /// and the fault seed, so every run is reproducible.
    share_rng: DetRng,
}

impl MemoryController {
    /// Builds a controller (and its backing NVM device) from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ControllerConfig) -> Result<Self> {
        config.validate()?;
        let frames = config.frames();
        // One spare line after the data region serves as the Start-Gap
        // slot when wear levelling is enabled.
        let counter_base = config.data_capacity + LINE_SIZE as u64;
        // The bad-line spare pool sits after the counter region, and
        // under ADR the ordering journal sits after the spares:
        // [data][gap][counters][spares][journal].
        let spare_base = counter_base + frames * LINE_SIZE as u64;
        let journal_base = spare_base + config.spare_lines * LINE_SIZE as u64;
        let journal_lines = if config.persist_domain == PersistDomain::Adr {
            persist::JOURNAL_LINES
        } else {
            0
        };
        // The scattered backend appends a mask-share region (one line
        // per data line) after the journal; under counter mode it is
        // empty, so the device layout is bit-for-bit the historical one.
        let mask_base = journal_base + journal_lines * LINE_SIZE as u64;
        let mask_lines = if config.protection == ProtectionMode::ScatteredTwoShare {
            config.data_capacity / LINE_SIZE as u64
        } else {
            0
        };
        let nvm = NvmDevice::new(NvmConfig {
            capacity_bytes: mask_base + mask_lines * LINE_SIZE as u64,
            timing: config.nvm_timing,
            endurance_limit: config.endurance_limit,
            ecc: config.nvm_ecc,
            transient_read_ber: config.transient_read_ber,
            fault_seed: config.nvm_fault_seed,
            ..NvmConfig::default()
        });
        let counter_cache = SetAssocCache::new(CacheConfig::new(
            "counter",
            config.counter_cache_bytes,
            config.counter_cache_ways,
            config.counter_cache_latency,
        )?);
        // The scattered backend reuses the counter region as its block
        // liveness metadata, so the same integrity tree covers it.
        let merkle = if config.integrity
            && (config.encryption == EncryptionMode::Ctr
                || config.protection == ProtectionMode::ScatteredTwoShare)
        {
            Some(MerkleTree::with_initial_leaf(
                frames as usize,
                &CounterBlock::default().to_line(),
            ))
        } else {
            None
        };
        let ctr = (config.encryption == EncryptionMode::Ctr).then(|| CtrEngine::new(config.key));
        let ecb = (config.encryption == EncryptionMode::Ecb).then(|| EcbEngine::new(config.key));
        let channels = ChannelSched::new(&config.nvm_timing);
        let start_gap = config_start_gap(&config);
        let wqueue = config_wqueue(&config)?;
        let config_spare_lines = config.spare_lines;
        let tracer = Tracer::from_depth(config.trace_depth);
        let mut key_word = [0u8; 8];
        key_word.copy_from_slice(&config.key[..8]);
        let share_rng =
            DetRng::new(u64::from_le_bytes(key_word) ^ SHARE_DOMAIN ^ config.nvm_fault_seed);
        Ok(MemoryController {
            config,
            nvm,
            counter_cache,
            ctr,
            ecb,
            merkle,
            channels,
            deuce_meta: BTreeMap::new(),
            stats: ControllerStats::default(),
            counter_base,
            start_gap,
            enclave_pages: std::collections::BTreeSet::new(),
            wqueue,
            counters_lost: false,
            heal: SparePool::new(spare_base, config_spare_lines),
            spare_base,
            pending_heal: Vec::new(),
            scrub_cursor: 0,
            writes_since_scrub: 0,
            tracer,
            profile: StageProfile::new(),
            op_now: Cycles::ZERO,
            journal_base,
            persist: PersistState::new(),
            mask_base,
            share_rng,
        })
    }

    // ------------------------------------------------------------------
    // Persist-step model: every durable line write of a multi-step
    // persist sequence funnels through `persist_line`, which journals
    // the line (ADR), counts the step, and honours an armed crash cut.
    // ------------------------------------------------------------------

    /// Whether the ordering journal is active (ADR persistence domain).
    fn adr(&self) -> bool {
        self.config.persist_domain == PersistDomain::Adr
    }

    /// Device address of journal line `idx` (0 = header; entry `i` uses
    /// lines `1 + 2i` and `2 + 2i`).
    fn journal_line_addr(&self, idx: u64) -> BlockAddr {
        BlockAddr::new(self.journal_base + idx * LINE_SIZE as u64)
    }

    /// Opens a persist sequence (nested calls join the outermost one).
    /// The NVM header is written lazily, on the first journal entry —
    /// an operation that persists nothing leaves no journal trace.
    fn seq_begin(&mut self, tag: SeqTag) {
        if !self.adr() {
            return;
        }
        if self.persist.depth == 0 {
            self.persist.tag = Some(tag);
        }
        self.persist.depth += 1;
    }

    /// Closes a persist sequence. When the outermost level completes
    /// without a fired cut and the header was written, the journal is
    /// marked closed (committing the sequence); after a cut the header
    /// is deliberately left open on NVM for recovery to find.
    fn seq_end(&mut self) -> Result<()> {
        if !self.adr() {
            return Ok(());
        }
        self.persist.depth = self.persist.depth.saturating_sub(1);
        if self.persist.depth > 0 {
            return Ok(());
        }
        self.persist.tag = None;
        self.persist.victim_flush = false;
        if self.persist.cut_fired {
            return Ok(());
        }
        if self.persist.header_written {
            let seq = self.persist.next_seq;
            self.nvm.write_line(
                self.journal_line_addr(0),
                &persist::encode_header(false, 0, seq),
            )?;
            self.persist.next_seq = seq + 1;
            self.persist.header_written = false;
            self.persist.journaled.clear();
            self.persist.entry_count = 0;
        }
        Ok(())
    }

    /// Runs `f` inside a persist sequence (the `with_seq` discipline:
    /// every public mutating operation brackets its body so journal
    /// entries group into one atomically-recoverable unit).
    fn with_seq<T>(&mut self, tag: SeqTag, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.seq_begin(tag);
        let result = f(self);
        let end = self.seq_end();
        let v = result?;
        end?;
        Ok(v)
    }

    /// Appends one journal record (header + entry + payload lines) to
    /// the open sequence. Journal writes model a battery-latched path:
    /// they bypass `persist_line` (no steps, no cuts, no tearing).
    fn journal_write_entry(&mut self, entry: &JournalEntry) -> Result<()> {
        if self.persist.entry_count >= persist::JOURNAL_MAX_ENTRIES {
            return Err(Error::InvalidConfig {
                detail: format!(
                    "ordering journal overflow: one persist sequence exceeded {} entries",
                    persist::JOURNAL_MAX_ENTRIES
                ),
            });
        }
        let seq = self.persist.next_seq;
        if !self.persist.header_written {
            let tag = self.persist.tag.map_or(0, SeqTag::raw);
            self.nvm.write_line(
                self.journal_line_addr(0),
                &persist::encode_header(true, tag, seq),
            )?;
            self.persist.header_written = true;
        }
        let i = self.persist.entry_count as u64;
        self.nvm.write_line(
            self.journal_line_addr(1 + 2 * i),
            &persist::encode_entry(entry, seq),
        )?;
        self.nvm
            .write_line(self.journal_line_addr(2 + 2 * i), &entry.payload)?;
        self.persist.entry_count += 1;
        self.persist.journaled.push(entry.target.raw());
        Ok(())
    }

    /// Journals the line about to be persisted to `slot`. Data and
    /// counter lines of in-flight operations record their **pre-image**
    /// (undo: a cut rolls the operation back); counter writebacks of
    /// already-durable data (dirty-victim evictions, explicit flushes)
    /// record the **post-image** (redo: re-persisting the newest value
    /// is always consistent). First pre-image wins per line, so nested
    /// sequences and crash-time flushes restore pre-operation state.
    fn journal_append(
        &mut self,
        slot: BlockAddr,
        data: &Line,
        counter_page: Option<PageId>,
    ) -> Result<()> {
        let kind = match counter_page {
            Some(_) => {
                let redo =
                    self.persist.victim_flush || self.persist.tag.is_some_and(SeqTag::is_redo);
                if redo {
                    EntryKind::CounterRedo
                } else {
                    EntryKind::CounterUndo
                }
            }
            None => EntryKind::DataUndo,
        };
        if kind != EntryKind::CounterRedo && self.persist.journaled.contains(&slot.raw()) {
            return Ok(());
        }
        let payload = match kind {
            EntryKind::CounterRedo => *data,
            _ => self.nvm.peek(slot),
        };
        let entry = JournalEntry {
            kind,
            target: slot,
            aux: counter_page.map_or(0, |p| p.raw()),
            was_quarantined: false,
            payload,
        };
        self.journal_write_entry(&entry)
    }

    /// Journals a spare-pool allocation so recovery can roll the remap
    /// table back to its pre-operation state (re-quarantining a line the
    /// interrupted operation had revived).
    fn journal_remap_alloc(
        &mut self,
        dev: BlockAddr,
        spare: BlockAddr,
        was_quarantined: bool,
    ) -> Result<()> {
        if !self.adr() {
            return Ok(());
        }
        let entry = JournalEntry {
            kind: EntryKind::RemapAlloc,
            target: dev,
            aux: spare.raw(),
            was_quarantined,
            payload: [0u8; LINE_SIZE],
        };
        self.journal_write_entry(&entry)
    }

    /// The persist choke point: every durable line write inside a
    /// persist sequence lands here. Under ADR the line is journaled
    /// first (write-ahead), the lifetime step counter ticks, and an
    /// armed crash cut stops the machine — either just before the write
    /// (`torn_bytes == 0`) or mid-write, persisting only an 8-byte-
    /// aligned prefix of the new line over the old one. Under eADR the
    /// step counter ticks (so crash-point censuses are domain-
    /// independent) but cuts never fire: stored energy completes the
    /// sequence.
    fn persist_line(
        &mut self,
        slot: BlockAddr,
        data: &Line,
        counter_page: Option<PageId>,
    ) -> Result<()> {
        if self.persist.cut_fired {
            return Err(Error::PowerCut {
                step: self.persist.steps,
            });
        }
        if self.adr() {
            self.journal_append(slot, data, counter_page)?;
        }
        self.persist.steps += 1;
        if self.adr() {
            if let Some(cut) = self.persist.armed {
                if self.persist.steps >= cut.at_step {
                    self.persist.cut_fired = true;
                    let torn = cut.torn_bytes.min(LINE_SIZE) & !7;
                    if torn > 0 {
                        let mut merged = self.nvm.peek(slot);
                        merged[..torn].copy_from_slice(&data[..torn]);
                        self.nvm.write_line(slot, &merged)?;
                    }
                    return Err(Error::PowerCut {
                        step: self.persist.steps,
                    });
                }
            }
        }
        self.nvm.write_line(slot, data)
    }

    /// Arms a crash cut (honoured only under ADR; under eADR the victim
    /// operation completes — flush-on-fail semantics).
    pub(crate) fn arm_crash_cut(&mut self, cut: CrashCut) {
        self.persist.armed = Some(cut);
    }

    /// Disarms a pending crash cut without firing it.
    pub(crate) fn disarm_crash_cut(&mut self) {
        self.persist.armed = None;
    }

    /// Whether an armed cut has fired (the machine is "off" until
    /// [`MemoryController::power_loss`] runs).
    pub(crate) fn crash_cut_fired(&self) -> bool {
        self.persist.cut_fired
    }

    /// Lifetime persist-step count (the crash injector's step census).
    pub(crate) fn persist_steps(&self) -> u64 {
        self.persist.steps
    }

    /// Reads a data line, applying wear-levelling remapping, write-queue
    /// forwarding, spare-pool redirection, and the retry/heal policy. A
    /// queued (not yet drained) write to the same line is forwarded
    /// instead of reading stale device contents.
    fn nvm_read_data(&mut self, addr: BlockAddr) -> Result<Line> {
        let dev = self.device_addr(addr);
        if let Some(wq) = &mut self.wqueue {
            if let Some(line) = wq.forward(dev) {
                return Ok(line);
            }
        }
        if self.heal.is_quarantined(dev) {
            return Err(Error::Quarantined { addr: dev.addr() });
        }
        let slot = self.heal.redirect(dev);
        let read = match self.read_line_healing(slot) {
            Ok(r) => r,
            Err(Error::UncorrectableEcc { .. }) => {
                // Retries exhausted or permanently beyond the correction
                // bound: the data is lost. Degrade loudly and
                // deterministically from here on, instead of serving the
                // known-bad line.
                self.heal.quarantine(dev);
                self.stats.health.quarantined.inc();
                return Err(Error::Quarantined { addr: dev.addr() });
            }
            Err(e) => return Err(e),
        };
        if read.was_corrected() && self.nvm.is_failed(slot) {
            // Permanent weak cells that ECC can still repair: rescue the
            // line to a spare while it is correctable. Deferred to the
            // end of the current operation so counter snapshots held by
            // callers stay coherent.
            self.note_pending_heal(addr);
        }
        Ok(read.into_data())
    }

    /// One device line read under the retry policy: transient
    /// uncorrectable errors are retried with bounded exponential
    /// backoff; permanent ones (weak-cell population alone exceeds the
    /// correction bound) fail immediately — re-reading cannot help.
    fn read_line_healing(&mut self, slot: BlockAddr) -> Result<LineRead> {
        let correct = self.nvm.config().ecc.correct;
        let mut attempt = 0u32;
        loop {
            match self.nvm.read_line(slot) {
                Ok(read) => {
                    if attempt > 0 {
                        self.stats.health.retried_ok.inc();
                    }
                    if read.was_corrected() {
                        self.stats.health.ecc_corrected.inc();
                        let at = self.op_now;
                        self.tracer
                            .emit(at, || TraceEvent::EccCorrection { addr: slot });
                    }
                    return Ok(read);
                }
                Err(Error::UncorrectableEcc { addr, flips }) => {
                    let permanent = self.nvm.weak_bit_count(slot) > correct;
                    if permanent || attempt >= self.config.retry.max_retries {
                        return Err(Error::UncorrectableEcc { addr, flips });
                    }
                    attempt += 1;
                    self.stats.health.retries.inc();
                    let backoff = self.config.retry.backoff(attempt);
                    self.stats.health.backoff_cycles += backoff.raw();
                    self.profile.charge(Stage::RetryBackoff, backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes one device-space line, applying spare-pool redirection. A
    /// full-line write to a quarantined slot carries everything a spare
    /// needs, so it revives the line through a fresh spare when one is
    /// available.
    fn data_write_slot(&mut self, dev: BlockAddr, data: &Line) -> Result<()> {
        if self.heal.is_quarantined(dev) {
            match self.heal.allocate(dev) {
                Some(slot) => {
                    self.heal.unquarantine(dev);
                    self.journal_remap_alloc(dev, slot, true)?;
                    self.stats.health.remaps.inc();
                    let at = self.op_now;
                    self.tracer.emit(at, || TraceEvent::LineRemap {
                        addr: dev,
                        ok: true,
                    });
                    return self.persist_line(slot, data, None);
                }
                None => return Err(Error::Quarantined { addr: dev.addr() }),
            }
        }
        let slot = self.heal.redirect(dev);
        self.persist_line(slot, data, None)
    }

    /// Writes a data line, applying wear-levelling remapping and
    /// advancing the Start-Gap state. With a write queue configured the
    /// line is buffered; a high-water burst drains to the low mark.
    fn nvm_write_data(&mut self, addr: BlockAddr, data: &Line) -> Result<()> {
        let dev = self.device_addr(addr);
        if let Some(wq) = &mut self.wqueue {
            let must_drain = wq.push(dev, *data, false);
            if must_drain {
                let burst = wq.burst_len();
                self.drain_queue(burst, Cycles::ZERO)?;
            }
            return Ok(());
        }
        self.data_write_slot(dev, data)?;
        self.wear_level_on_write()
    }

    /// Drains up to `n` queued writes to the device, scheduling their
    /// bus transfers at `now`.
    fn drain_queue(&mut self, n: usize, now: Cycles) -> Result<()> {
        let mut drained = 0u32;
        for _ in 0..n {
            let Some(wq) = &mut self.wqueue else { break };
            let Some((dev, data, _zeroing)) = wq.pop_for_drain() else {
                break;
            };
            let write_lat = self.config.nvm_timing.write_cycles();
            self.sched(now, write_lat);
            self.profile.charge(Stage::WqueueDrain, write_lat);
            self.data_write_slot(dev, &data)?;
            self.wear_level_on_write()?;
            drained += 1;
        }
        if drained > 0 {
            self.tracer
                .emit(now, || TraceEvent::WriteQueueDrain { drained });
        }
        Ok(())
    }

    /// Drains the whole write queue (fence, re-encryption, power loss).
    fn drain_queue_fully(&mut self, now: Cycles) -> Result<()> {
        let n = self.wqueue.as_ref().map(|q| q.len()).unwrap_or(0);
        self.drain_queue(n, now)
    }

    /// Peeks a data line (no stats), applying remapping and forwarding.
    fn nvm_peek_data(&self, addr: BlockAddr) -> Line {
        let dev = self.device_addr(addr);
        if let Some(wq) = &self.wqueue {
            // Peek without mutating stats: scan entries via forward-free
            // logic (clone-free: iterate).
            if let Some(line) = wq.peek(dev) {
                return line;
            }
        }
        self.nvm.peek(self.heal.redirect(dev))
    }

    /// Maps a logical data-line address to its device slot, applying
    /// Start-Gap remapping when wear levelling is enabled.
    fn device_addr(&self, addr: BlockAddr) -> BlockAddr {
        match &self.start_gap {
            Some(sg) => BlockAddr::new(sg.remap(addr.raw() / LINE_SIZE as u64) * LINE_SIZE as u64),
            None => addr,
        }
    }

    /// Advances the Start-Gap state on a demand write, performing the
    /// physical line copy (one device read + one device write) when the
    /// gap moves.
    fn wear_level_on_write(&mut self) -> Result<()> {
        let Some(sg) = &mut self.start_gap else {
            return Ok(());
        };
        if let Some((from, to)) = sg.advance_with_move() {
            let from_slot = self.heal.redirect(BlockAddr::new(from * LINE_SIZE as u64));
            let to_slot = self.heal.redirect(BlockAddr::new(to * LINE_SIZE as u64));
            let data = self.nvm.read_line(from_slot)?.into_data();
            self.nvm.write_line(to_slot, &data)?;
        }
        Ok(())
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Controller statistics.
    pub(crate) fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Counts a privilege-denied shred command (MMIO executors that
    /// reject before reaching [`MemoryController::shred_page_at`]).
    pub(crate) fn note_shred_denied(&mut self) {
        self.stats.shred_denied.inc();
    }

    /// The backing NVM device (energy, wear, remanence surface).
    pub(crate) fn nvm(&self) -> &NvmDevice {
        &self.nvm
    }

    /// Counter-cache statistics (hit/miss — drives Fig. 12).
    pub(crate) fn counter_cache_stats(&self) -> &ss_cache::CacheStats {
        self.counter_cache.stats()
    }

    /// Write-queue statistics, when a queue is configured.
    pub(crate) fn write_queue_stats(&self) -> Option<&crate::wqueue::WriteQueueStats> {
        self.wqueue.as_ref().map(|q| q.stats())
    }

    /// Resets statistics between experiment phases (state is kept; the
    /// event trace, being a log rather than a counter, is kept too).
    pub fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.counter_cache.reset_stats();
        self.nvm.reset_stats();
        self.channels.reset();
        self.profile = StageProfile::new();
    }

    /// Per-stage cycle attribution accumulated so far.
    pub(crate) fn profile(&self) -> &StageProfile {
        &self.profile
    }

    /// The retained trace records, oldest first (empty when tracing is
    /// disabled).
    pub(crate) fn trace_records(&self) -> Vec<TraceRecord> {
        self.tracer.records()
    }

    /// Lifetime `(emitted, dropped)` event totals.
    pub(crate) fn trace_totals(&self) -> (u64, u64) {
        self.tracer.totals()
    }

    /// Whether event tracing is recording.
    pub(crate) fn trace_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Snapshot of every statistic the controller owns or aggregates,
    /// under the workspace's stable dotted names (DESIGN.md §10). The
    /// key set is workload-independent: absent subsystems (e.g. no
    /// write queue) export zeros, so epoch deltas and cross-run diffs
    /// always see the same schema.
    pub(crate) fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let s = &self.stats;
        reg.set("ctrl.reads", s.mem.reads.get());
        reg.set("ctrl.writes", s.mem.writes.get());
        reg.set("ctrl.zeroing_writes", s.mem.zeroing_writes.get());
        reg.set("ctrl.zero_fill_reads", s.mem.zero_fill_reads.get());
        reg.set("ctrl.counter_reads", s.mem.counter_reads.get());
        reg.set("ctrl.counter_writes", s.mem.counter_writes.get());
        reg.set("ctrl.shreds", s.shreds.get());
        reg.set("ctrl.reencryptions", s.reencryptions.get());
        reg.set("ctrl.shred_denied", s.shred_denied.get());
        reg.set("ctrl.bus_transfers", s.bus_transfers.get());
        export_latency(&mut reg, "ctrl.read_latency", &s.mem.read_latency);
        reg.set("heal.ecc_corrected", s.health.ecc_corrected.get());
        reg.set("heal.retries", s.health.retries.get());
        reg.set("heal.retried_ok", s.health.retried_ok.get());
        reg.set("heal.backoff_cycles", s.health.backoff_cycles);
        reg.set("heal.remaps", s.health.remaps.get());
        reg.set("heal.remap_failures", s.health.remap_failures.get());
        reg.set("heal.quarantined", s.health.quarantined.get());
        reg.set("heal.scrub_reads", s.health.scrub_reads.get());
        reg.set("heal.scrub_heals", s.health.scrub_heals.get());
        reg.set("heal.remapped_lines", self.heal.remapped_count());
        reg.set("heal.quarantined_lines", self.heal.quarantined_count());
        reg.set("heal.spare_lines_free", self.heal.free());
        self.counter_cache.stats().export(&mut reg, "ccache");
        let wq_zero = crate::wqueue::WriteQueueStats::default();
        let wq = self.wqueue.as_ref().map_or(&wq_zero, |q| q.stats());
        reg.set("wq.enqueued", wq.enqueued.get());
        reg.set("wq.drained", wq.drained.get());
        reg.set("wq.forwards", wq.forwards.get());
        reg.set("wq.coalesced", wq.coalesced.get());
        reg.set("wq.high_water_drains", wq.high_water_drains.get());
        reg.set(
            "wq.depth",
            self.wqueue.as_ref().map_or(0, |q| q.len()) as u64,
        );
        // `prot.*` exists only for scattered configurations: the
        // counter-mode key set (and thus every committed metrics
        // golden) is exactly the historical schema.
        if self.config.protection == ProtectionMode::ScatteredTwoShare {
            reg.set("prot.share_writes", s.prot.share_writes.get());
            reg.set("prot.mask_writes", s.prot.mask_writes.get());
            reg.set("prot.share_reads", s.prot.share_reads.get());
            reg.set("prot.recombines", s.prot.recombines.get());
            reg.set("prot.mask_discards", s.prot.mask_discards.get());
            reg.set("prot.fresh_share_rescues", s.prot.fresh_share_rescues.get());
            reg.set("prot.metadata_lines", self.scattered_metadata_lines());
        }
        self.nvm.stats().export(&mut reg, "nvm");
        self.profile.export(&mut reg);
        let (emitted, dropped) = self.tracer.totals();
        reg.set("trace.events", emitted);
        reg.set("trace.dropped", dropped);
        reg
    }

    fn counter_addr(&self, page: PageId) -> BlockAddr {
        BlockAddr::new(self.counter_base + page.raw() * LINE_SIZE as u64)
    }

    /// Schedules a bus transfer on the channels, counting it.
    fn sched(&mut self, now: Cycles, service: Cycles) -> Cycles {
        self.stats.bus_transfers.inc();
        self.channels.schedule(now, service)
    }

    fn check_data_addr(&self, addr: BlockAddr) -> Result<()> {
        if addr.raw() + LINE_SIZE as u64 > self.config.data_capacity {
            return Err(Error::AddrOutOfRange {
                addr: addr.addr(),
                capacity: self.config.data_capacity,
            });
        }
        Ok(())
    }

    /// Fetches (through the counter cache) the counter block of `page`.
    /// Returns the counters and the latency incurred on the critical path.
    fn fetch_counters(&mut self, page: PageId, now: Cycles) -> Result<(CounterBlock, Cycles)> {
        let caddr = self.counter_addr(page);
        let mut latency = self.config.counter_cache_latency;
        if let Some(e) = self.counter_cache.get(caddr) {
            return Ok((e.value, latency));
        }
        // Miss: read the counter line from NVM and verify its integrity.
        if self.counters_lost {
            return Err(Error::CounterLoss);
        }
        let read_lat = self.sched(now + latency, self.config.nvm_timing.read_cycles());
        latency += read_lat;
        self.profile.charge(Stage::CounterFetch, read_lat);
        // The counter region has a fixed layout (page → line), so worn
        // counter lines cannot be remapped — but transient read errors
        // still go through the retry policy.
        let line = self.read_line_healing(caddr)?.into_data();
        self.stats.mem.counter_reads.inc();
        if let Some(merkle) = &self.merkle {
            let ok = merkle.verify_leaf(page.raw() as usize, &line);
            self.profile.charge(Stage::MerkleVerify, Cycles::ZERO);
            self.tracer
                .emit(now, || TraceEvent::MerkleVerify { page, ok });
            if !ok {
                return Err(Error::IntegrityViolation {
                    detail: format!("counter block of {page} failed verification"),
                });
            }
        }
        let ctrs = CounterBlock::from_line(&line);
        self.install_counters(page, ctrs, false, now)?;
        Ok((ctrs, latency))
    }

    /// Installs a counter block into the cache, handling the victim and
    /// the configured persistence mode. `dirty` marks modified counters.
    fn install_counters(
        &mut self,
        page: PageId,
        ctrs: CounterBlock,
        dirty: bool,
        now: Cycles,
    ) -> Result<()> {
        let caddr = self.counter_addr(page);
        // Journal the page's *pre-operation* counter image the moment an
        // operation dirties it (write-ahead). The cached value — not the
        // possibly-stale NVM line — is the truth under battery-backed
        // write-back, and first-pre-image-wins dedupe keeps this in sync
        // with the persist-time entry under write-through. Without this,
        // the crash-time battery flush could persist a counter the
        // interrupted operation bumped with no pre-image to roll back to.
        if dirty && self.adr() && self.persist.depth > 0 {
            let redo = self.persist.victim_flush || self.persist.tag.is_some_and(SeqTag::is_redo);
            if !redo && !self.persist.journaled.contains(&caddr.raw()) {
                let pre = self
                    .counter_cache
                    .iter()
                    .find(|e| e.addr == caddr)
                    .map_or_else(|| self.nvm.peek(caddr), |e| e.value.to_line());
                self.journal_write_entry(&JournalEntry {
                    kind: EntryKind::CounterUndo,
                    target: caddr,
                    aux: page.raw(),
                    was_quarantined: false,
                    payload: pre,
                })?;
            }
        }
        let write_through =
            self.config.counter_persistence == CounterPersistence::WriteThrough && dirty;
        if write_through {
            self.write_counters_to_nvm(page, &ctrs, now)?;
        }
        let victim = self
            .counter_cache
            .insert(caddr, ctrs, dirty && !write_through);
        if let Some(v) = victim {
            if v.dirty {
                // A dirty victim's data lines are already durable: its
                // counter writeback journals a post-image (roll forward
                // on recovery), not a pre-image.
                let vpage = PageId::new((v.addr.raw() - self.counter_base) / LINE_SIZE as u64);
                let was = self.persist.victim_flush;
                self.persist.victim_flush = true;
                let r = self.write_counters_to_nvm(vpage, &v.value, now);
                self.persist.victim_flush = was;
                r?;
            }
        }
        Ok(())
    }

    fn write_counters_to_nvm(
        &mut self,
        page: PageId,
        ctrs: &CounterBlock,
        now: Cycles,
    ) -> Result<()> {
        let caddr = self.counter_addr(page);
        let line = ctrs.to_line();
        let write_lat = self.config.nvm_timing.write_cycles();
        self.sched(now, write_lat);
        self.profile.charge(Stage::CounterWrite, write_lat);
        // A cut here leaves the in-memory Merkle leaf at the OLD line:
        // recovery's pre-image undo restores NVM to match it.
        self.persist_line(caddr, &line, Some(page))?;
        self.stats.mem.counter_writes.inc();
        if let Some(merkle) = &mut self.merkle {
            merkle.update_leaf(page.raw() as usize, &line);
        }
        Ok(())
    }

    fn chunk_minors(&self, addr: BlockAddr, current_minor: u8) -> [u8; CHUNKS] {
        match self.deuce_meta.get(&addr.raw()) {
            Some(meta) => core::array::from_fn(|i| meta.chunk_minor(i, current_minor)),
            None => [current_minor; CHUNKS],
        }
    }

    fn decrypt_ctr(&self, addr: BlockAddr, ctrs: &CounterBlock, cipher: &Line) -> Result<Line> {
        let engine = engine_of(&self.ctr, "ctr")?;
        let page = addr.page();
        let block = addr.block_in_page();
        Ok(if self.config.deuce {
            let minors = self.chunk_minors(addr, ctrs.minors[block]);
            deuce::decrypt_chunked(engine, page.raw(), block as u8, ctrs.major, minors, cipher)
        } else {
            engine.decrypt_line(&ctrs.iv(page.raw(), block), cipher)
        })
    }

    // ------------------------------------------------------------------
    // Self-healing: deferred bad-line remap and background scrub.
    // ------------------------------------------------------------------

    /// Flags a logical data line for remap at the end of the current
    /// operation (idempotent).
    fn note_pending_heal(&mut self, addr: BlockAddr) {
        if !self.pending_heal.contains(&addr) {
            self.pending_heal.push(addr);
        }
    }

    /// Remaps every line flagged during the operation that just
    /// completed. Runs until the list drains — a remap's own reads (page
    /// re-encryption, counter fetches) may flag further lines.
    fn process_pending_heal(&mut self, now: Cycles) -> Result<()> {
        while let Some(addr) = self.pending_heal.pop() {
            self.remap_line(addr, now)?;
        }
        Ok(())
    }

    /// Quarantines `dev` after a failed remap (no spare, or the rescue
    /// read was already uncorrectable).
    fn fail_remap(&mut self, dev: BlockAddr) -> Result<()> {
        self.stats.health.remap_failures.inc();
        self.heal.quarantine(dev);
        self.stats.health.quarantined.inc();
        let at = self.op_now;
        self.tracer.emit(at, || TraceEvent::LineRemap {
            addr: dev,
            ok: false,
        });
        Ok(())
    }

    /// Moves the degrading line at logical `addr` to a spare. Under
    /// counter mode the rescued plaintext is re-encrypted under a fresh
    /// IV (minor-counter bump, exactly like a demand write), and the
    /// counter + Merkle update commits the move atomically with the new
    /// ciphertext: a crash between the spare write and the counter write
    /// leaves the old mapping decodable under the old counters.
    fn remap_line(&mut self, addr: BlockAddr, now: Cycles) -> Result<()> {
        self.with_seq(SeqTag::Remap, |mc| mc.remap_line_inner(addr, now))
    }

    fn remap_line_inner(&mut self, addr: BlockAddr, now: Cycles) -> Result<()> {
        let dev = self.device_addr(addr);
        if self.heal.is_quarantined(dev) {
            return Ok(());
        }
        let slot = self.heal.redirect(dev);
        if !self.nvm.is_failed(slot) {
            // Healed in the meantime (e.g. revived by a full-line write).
            return Ok(());
        }
        // Queued writes to this line must land first so the rescue read
        // below sees the newest ciphertext.
        self.drain_queue_fully(now)?;
        crate::protection::backend(self.config.protection).rescue_remap(self, addr, now)
    }

    /// Counter-mode rescue (and the `None`/`Ecb` baselines) — the
    /// pre-trait remap body after the quarantine/healed/drain guards.
    pub(crate) fn legacy_rescue_remap(&mut self, addr: BlockAddr, now: Cycles) -> Result<()> {
        let dev = self.device_addr(addr);
        let slot = self.heal.redirect(dev);
        match self.config.encryption {
            EncryptionMode::None | EncryptionMode::Ecb => {
                let rescued = match self.read_line_healing(slot) {
                    Ok(r) => r.into_data(),
                    Err(Error::UncorrectableEcc { .. }) => return self.fail_remap(dev),
                    Err(e) => return Err(e),
                };
                let Some(new_slot) = self.heal.allocate(dev) else {
                    return self.fail_remap(dev);
                };
                self.journal_remap_alloc(dev, new_slot, false)?;
                self.sched(now, self.config.nvm_timing.write_cycles());
                self.persist_line(new_slot, &rescued, None)?;
                self.stats.health.remaps.inc();
                self.tracer.emit(now, || TraceEvent::LineRemap {
                    addr: dev,
                    ok: true,
                });
            }
            EncryptionMode::Ctr => {
                let page = addr.page();
                let block = addr.block_in_page();
                let (ctrs, _) = self.fetch_counters(page, now)?;
                if self.config.shredder && ctrs.is_shredded(block) {
                    // A shredded block has no content to rescue, and its
                    // minor counter must STAY zero — bumping it would
                    // turn zero-fill reads back into array reads of
                    // stale ciphertext. Just retire the worn slot; the
                    // first post-shred write brings its own fresh IV.
                    let Some(new_slot) = self.heal.allocate(dev) else {
                        return self.fail_remap(dev);
                    };
                    self.journal_remap_alloc(dev, new_slot, false)?;
                    self.stats.health.remaps.inc();
                    self.tracer.emit(now, || TraceEvent::LineRemap {
                        addr: dev,
                        ok: true,
                    });
                    return Ok(());
                }
                let cipher = match self.read_line_healing(slot) {
                    Ok(r) => r.into_data(),
                    Err(Error::UncorrectableEcc { .. }) => return self.fail_remap(dev),
                    Err(e) => return Err(e),
                };
                let plain = self.decrypt_ctr(addr, &ctrs, &cipher)?;
                // Fresh IV: bump the minor exactly like a demand write,
                // so rescued plaintext is never re-encrypted under a
                // previously used (page, block, counter) tuple.
                let old_ctrs = ctrs;
                let mut new_ctrs = ctrs;
                if new_ctrs.bump_for_write(block) == BumpOutcome::Overflowed {
                    self.tracer.emit(now, || TraceEvent::CounterOverflow {
                        page,
                        block: block as u8,
                    });
                    self.reencrypt_page(page, &old_ctrs, &new_ctrs, block, now)?;
                }
                let minor = new_ctrs.minors[block];
                let new_cipher = if self.config.deuce {
                    self.deuce_meta
                        .insert(addr.raw(), DeuceMeta::new_epoch(minor));
                    let engine = engine_of(&self.ctr, "ctr")?;
                    deuce::encrypt_chunked(
                        engine,
                        page.raw(),
                        block as u8,
                        new_ctrs.major,
                        [minor; CHUNKS],
                        &plain,
                    )
                } else {
                    let engine = engine_of(&self.ctr, "ctr")?;
                    engine.encrypt_line(&new_ctrs.iv(page.raw(), block), &plain)
                };
                let Some(new_slot) = self.heal.allocate(dev) else {
                    return self.fail_remap(dev);
                };
                self.journal_remap_alloc(dev, new_slot, false)?;
                // Commit order: spare ciphertext first, then the counter
                // + Merkle update makes the new IV authoritative.
                self.sched(now, self.config.nvm_timing.write_cycles());
                self.persist_line(new_slot, &new_cipher, None)?;
                self.install_counters(page, new_ctrs, true, now)?;
                self.stats.health.remaps.inc();
                self.tracer.emit(now, || TraceEvent::LineRemap {
                    addr: dev,
                    ok: true,
                });
            }
        }
        Ok(())
    }

    /// Runs the scrubber if it is due and the write path is idle.
    fn maybe_scrub(&mut self, now: Cycles) -> Result<()> {
        let Some(interval) = self.config.scrub_interval else {
            return Ok(());
        };
        self.writes_since_scrub += 1;
        if self.writes_since_scrub < interval {
            return Ok(());
        }
        // Scrubbing steals idle cycles only: a backlogged write queue
        // has priority.
        if self.wqueue.as_ref().is_some_and(|q| !q.is_empty()) {
            return Ok(());
        }
        self.writes_since_scrub = 0;
        self.scrub_step(now)?;
        Ok(())
    }

    /// One background-scrubber step: reads the next data line in
    /// sequence (raw ciphertext — no counter fetch and no bus
    /// scheduling; the scrubber runs in idle device cycles), letting the
    /// ECC + retry + remap machinery heal anything degrading. Returns
    /// whether this step corrected, remapped, or retired a line.
    ///
    /// # Errors
    ///
    /// Propagates remap-path errors; an already-quarantined line is
    /// skipped silently.
    pub fn scrub_step(&mut self, now: Cycles) -> Result<bool> {
        self.with_seq(SeqTag::Scrub, |mc| mc.scrub_step_inner(now))
    }

    fn scrub_step_inner(&mut self, now: Cycles) -> Result<bool> {
        self.op_now = now;
        let lines = self.config.data_capacity / LINE_SIZE as u64;
        let addr = BlockAddr::new(self.scrub_cursor * LINE_SIZE as u64);
        self.scrub_cursor = (self.scrub_cursor + 1) % lines;
        self.stats.health.scrub_reads.inc();
        let corrected_before = self.stats.health.ecc_corrected.get();
        let retired_before = self.stats.health.remaps.get() + self.stats.health.quarantined.get();
        match self.nvm_read_data(addr) {
            Ok(_) => {}
            // Already degraded; nothing more the scrubber can do.
            Err(Error::Quarantined { .. }) => {}
            Err(e) => return Err(e),
        }
        self.process_pending_heal(now)?;
        let healed = self.stats.health.ecc_corrected.get() > corrected_before
            || self.stats.health.remaps.get() + self.stats.health.quarantined.get()
                > retired_before;
        if healed {
            self.stats.health.scrub_heals.inc();
        }
        self.tracer
            .emit(now, || TraceEvent::ScrubStep { addr, healed });
        Ok(healed)
    }

    /// Services an LLC miss (Fig. 7).
    ///
    /// # Errors
    ///
    /// [`Error::AddrOutOfRange`] for bad addresses,
    /// [`Error::IntegrityViolation`] on counter tampering,
    /// [`Error::CounterLoss`] after an unprotected crash.
    pub fn read_block(&mut self, addr: BlockAddr, now: Cycles) -> Result<ReadResult> {
        self.op_now = now;
        self.check_data_addr(addr)?;
        let result =
            crate::protection::backend(self.config.protection).read_line(self, addr, now)?;
        self.process_pending_heal(now)?;
        self.stats.mem.read_latency.record(result.latency);
        Ok(result)
    }

    /// Counter-mode read path (and the `None`/`Ecb` baselines) — the
    /// pre-trait [`MemoryController::read_block`] body, dispatched via
    /// [`crate::protection::CounterModeBackend`].
    pub(crate) fn legacy_read_line(&mut self, addr: BlockAddr, now: Cycles) -> Result<ReadResult> {
        let result = match self.config.encryption {
            EncryptionMode::None => {
                let read_lat = self.sched(now, self.config.nvm_timing.read_cycles());
                self.profile.charge(Stage::NvmRead, read_lat);
                let data = self.nvm_read_data(addr)?;
                self.stats.mem.reads.inc();
                ReadResult {
                    data,
                    latency: read_lat,
                    zero_filled: false,
                }
            }
            EncryptionMode::Ecb => {
                // Direct encryption: AES latency is serialised after the
                // array access (§2.2's performance argument against ECB).
                let read_lat = self.sched(now, self.config.nvm_timing.read_cycles());
                self.profile.charge(Stage::NvmRead, read_lat);
                self.profile.charge(Stage::AesEcb, self.config.aes_latency);
                let latency = read_lat + self.config.aes_latency;
                let cipher = self.nvm_read_data(addr)?;
                self.stats.mem.reads.inc();
                let data = engine_of(&self.ecb, "ecb")?.decrypt_line(&cipher);
                ReadResult {
                    data,
                    latency,
                    zero_filled: false,
                }
            }
            EncryptionMode::Ctr => {
                let page = addr.page();
                let block = addr.block_in_page();
                let (ctrs, ctr_lat) = self.fetch_counters(page, now)?;
                if self.config.shredder && ctrs.is_shredded(block) {
                    // Fig. 7 step 3b: minor counter is zero — return a
                    // zero-filled block, never touching the array.
                    self.stats.mem.zero_fill_reads.inc();
                    self.profile.charge(Stage::ZeroFill, ctr_lat);
                    self.tracer.emit(now, || TraceEvent::ZeroFillRead { addr });
                    ReadResult {
                        data: [0u8; LINE_SIZE],
                        latency: ctr_lat,
                        zero_filled: true,
                    }
                } else {
                    // Pad generation overlaps the array read; only the
                    // XOR is serialised (§2.2).
                    let read_lat = self.sched(now + ctr_lat, self.config.nvm_timing.read_cycles());
                    self.profile.charge(Stage::NvmRead, read_lat);
                    self.profile.charge(Stage::AesCtr, self.config.xor_latency);
                    let latency = ctr_lat + read_lat + self.config.xor_latency;
                    let cipher = self.nvm_read_data(addr)?;
                    self.stats.mem.reads.inc();
                    let data = self.decrypt_ctr(addr, &ctrs, &cipher)?;
                    ReadResult {
                        data,
                        latency,
                        zero_filled: false,
                    }
                }
            }
        };
        Ok(result)
    }

    /// Accepts a write-back from the LLC (or a non-temporal store).
    /// `zeroing` marks kernel-shredding traffic for classified accounting.
    /// Returns the issue latency (writes are posted; their bandwidth
    /// occupancy delays later accesses instead of stalling the writer).
    ///
    /// # Errors
    ///
    /// As for [`MemoryController::read_block`].
    pub fn write_block(
        &mut self,
        addr: BlockAddr,
        data: &Line,
        zeroing: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        self.op_now = now;
        self.check_data_addr(addr)?;
        self.with_seq(SeqTag::DemandWrite, |mc| {
            mc.write_block_inner(addr, data, zeroing, now)
        })
    }

    fn write_block_inner(
        &mut self,
        addr: BlockAddr,
        data: &Line,
        zeroing: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        crate::protection::backend(self.config.protection).write_line(self, addr, data, now)?;
        self.stats.mem.writes.inc();
        if zeroing {
            self.stats.mem.zeroing_writes.inc();
        }
        self.maybe_scrub(now)?;
        self.process_pending_heal(now)?;
        Ok(Cycles::new(1))
    }

    /// Counter-mode write path (and the `None`/`Ecb` baselines) — the
    /// pre-trait [`MemoryController::write_block`] body, dispatched via
    /// [`crate::protection::CounterModeBackend`].
    pub(crate) fn legacy_write_line(
        &mut self,
        addr: BlockAddr,
        data: &Line,
        now: Cycles,
    ) -> Result<()> {
        match self.config.encryption {
            EncryptionMode::None => {
                if self.wqueue.is_none() {
                    let write_lat = self.config.nvm_timing.write_cycles();
                    self.sched(now, write_lat);
                    self.profile.charge(Stage::NvmWrite, write_lat);
                }
                self.nvm_write_data(addr, data)?;
            }
            EncryptionMode::Ecb => {
                self.profile.charge(Stage::AesEcb, self.config.aes_latency);
                let cipher = engine_of(&self.ecb, "ecb")?.encrypt_line(data);
                if self.wqueue.is_none() {
                    let write_lat = self.config.nvm_timing.write_cycles();
                    self.sched(now, write_lat);
                    self.profile.charge(Stage::NvmWrite, write_lat);
                }
                self.nvm_write_data(addr, &cipher)?;
            }
            EncryptionMode::Ctr => {
                let page = addr.page();
                let block = addr.block_in_page();
                let (mut ctrs, _lat) = self.fetch_counters(page, now)?;
                let old_ctrs = ctrs;
                if ctrs.bump_for_write(block) == BumpOutcome::Overflowed {
                    self.tracer.emit(now, || TraceEvent::CounterOverflow {
                        page,
                        block: block as u8,
                    });
                    self.reencrypt_page(page, &old_ctrs, &ctrs, block, now)?;
                }
                self.profile.charge(Stage::AesCtr, self.config.xor_latency);
                let cipher = if self.config.deuce {
                    self.deuce_write_cipher(addr, &old_ctrs, &ctrs, data)?
                } else {
                    engine_of(&self.ctr, "ctr")?.encrypt_line(&ctrs.iv(page.raw(), block), data)
                };
                if self.wqueue.is_none() {
                    let write_lat = self.config.nvm_timing.write_cycles();
                    self.sched(now, write_lat);
                    self.profile.charge(Stage::NvmWrite, write_lat);
                }
                self.nvm_write_data(addr, &cipher)?;
                self.install_counters(page, ctrs, true, now)?;
            }
        }
        Ok(())
    }

    /// Computes the DEUCE ciphertext for a write: unmodified chunks keep
    /// their stored ciphertext bytes; modified chunks are re-encrypted
    /// under the new minor. Epoch rollover re-encrypts everything.
    fn deuce_write_cipher(
        &mut self,
        addr: BlockAddr,
        old_ctrs: &CounterBlock,
        new_ctrs: &CounterBlock,
        data: &Line,
    ) -> Result<Line> {
        let engine = engine_of(&self.ctr, "ctr")?;
        let page = addr.page();
        let block = addr.block_in_page();
        let new_minor = new_ctrs.minors[block];
        let major_changed = new_ctrs.major != old_ctrs.major;
        let epoch_rollover = new_minor.is_multiple_of(self.config.deuce_epoch) || major_changed;
        let was_shredded = old_ctrs.is_shredded(block);
        if epoch_rollover || was_shredded {
            // Whole line under the new minor; epoch restarts here.
            self.deuce_meta
                .insert(addr.raw(), DeuceMeta::new_epoch(new_minor));
            return Ok(deuce::encrypt_chunked(
                engine,
                page.raw(),
                block as u8,
                new_ctrs.major,
                [new_minor; CHUNKS],
                data,
            ));
        }
        // Recover the old plaintext (hardware knows the dirty-word mask
        // from the cache; we reconstruct it by decrypting the old line —
        // no stats/latency charged, see DESIGN.md).
        let old_cipher = self.nvm_peek_data(addr);
        let old_minor = old_ctrs.minors[block];
        let old_minors = self.chunk_minors(addr, old_minor);
        let old_plain = deuce::decrypt_chunked(
            engine,
            page.raw(),
            block as u8,
            old_ctrs.major,
            old_minors,
            &old_cipher,
        );
        let changed = deuce::changed_chunks(&old_plain, data);
        let mut meta = self
            .deuce_meta
            .get(&addr.raw())
            .copied()
            .unwrap_or(DeuceMeta::new_epoch(old_minor));
        // Chunks modified earlier in this epoch were encrypted under the
        // previous minor; they must follow the leading counter too.
        let mut minors = [0u8; CHUNKS];
        let mut cipher = old_cipher;
        for c in 0..CHUNKS {
            if changed[c] || meta.modified[c] {
                meta.modified[c] = true;
                minors[c] = new_minor;
            } else {
                minors[c] = meta.epoch_minor;
            }
        }
        let full_new = deuce::encrypt_chunked(
            engine,
            page.raw(),
            block as u8,
            new_ctrs.major,
            minors,
            data,
        );
        for c in 0..CHUNKS {
            if changed[c] || meta.modified[c] {
                cipher[c * 16..(c + 1) * 16].copy_from_slice(&full_new[c * 16..(c + 1) * 16]);
            }
        }
        self.deuce_meta.insert(addr.raw(), meta);
        Ok(cipher)
    }

    /// Re-encrypts every live block of `page` after a minor-counter
    /// overflow (§4.2): read, decrypt under the old IV, encrypt under the
    /// new one, write back. Shredded blocks stay shredded at no cost.
    fn reencrypt_page(
        &mut self,
        page: PageId,
        old_ctrs: &CounterBlock,
        new_ctrs: &CounterBlock,
        skip_block: usize,
        now: Cycles,
    ) -> Result<()> {
        self.stats.reencryptions.inc();
        // Queued writes to this page must land before re-encryption reads.
        self.drain_queue_fully(now)?;
        for b in 0..BLOCKS_PER_PAGE {
            if b == skip_block || old_ctrs.is_shredded(b) {
                continue;
            }
            let addr = page.block_addr(b);
            self.sched(now, self.config.nvm_timing.read_cycles());
            let cipher = self.nvm_read_data(addr)?;
            self.stats.mem.reads.inc();
            let plain = self.decrypt_ctr(addr, old_ctrs, &cipher)?;
            self.deuce_meta.remove(&addr.raw());
            let engine = engine_of(&self.ctr, "ctr")?;
            let new_cipher = engine.encrypt_line(&new_ctrs.iv(page.raw(), b), &plain);
            self.sched(now, self.config.nvm_timing.write_cycles());
            self.nvm_write_data(addr, &new_cipher)?;
            self.stats.mem.writes.inc();
        }
        self.deuce_meta.remove(&page.block_addr(skip_block).raw());
        Ok(())
    }

    /// Executes a shred command for `page` (Fig. 6 steps 3–5; cache
    /// invalidation — step 2 — is the caller's responsibility since the
    /// controller does not own the cache hierarchy).
    ///
    /// # Errors
    ///
    /// [`Error::PrivilegeViolation`] when invoked without kernel mode
    /// (§7.1), [`Error::InvalidConfig`] when the shredder is disabled,
    /// plus the read-path errors.
    pub fn shred_page(&mut self, page: PageId, kernel_mode: bool) -> Result<Cycles> {
        self.shred_page_at(page, kernel_mode, Cycles::ZERO)
    }

    /// [`MemoryController::shred_page`] with an explicit issue time for
    /// channel accounting.
    pub fn shred_page_at(
        &mut self,
        page: PageId,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        self.with_seq(SeqTag::Shred, |mc| {
            mc.shred_page_at_inner(page, kernel_mode, now)
        })
    }

    fn shred_page_at_inner(
        &mut self,
        page: PageId,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        self.op_now = now;
        if !kernel_mode {
            self.stats.shred_denied.inc();
            return Err(Error::PrivilegeViolation {
                addr: mmio::SHRED_REG,
            });
        }
        if !self.config.shredder {
            return Err(Error::InvalidConfig {
                detail: "shred command issued but silent shredder is disabled".into(),
            });
        }
        if page.base_addr().raw() >= self.config.data_capacity {
            return Err(Error::AddrOutOfRange {
                addr: page.base_addr(),
                capacity: self.config.data_capacity,
            });
        }
        let mut latency =
            crate::protection::backend(self.config.protection).shred_page(self, page, now)?;
        self.stats.shreds.inc();
        self.tracer.emit(now, || TraceEvent::Shred { page });
        self.process_pending_heal(now)?;
        // Counter update + ack (Fig. 6 steps 3–5).
        latency += Cycles::new(4);
        Ok(latency)
    }

    /// Counter-mode shred core — the pre-trait
    /// [`MemoryController::shred_page_at`] body between the privilege
    /// guards and the shred accounting.
    pub(crate) fn legacy_shred_page(&mut self, page: PageId, now: Cycles) -> Result<Cycles> {
        let (mut ctrs, latency) = self.fetch_counters(page, now)?;
        let old_ctrs = ctrs;
        let overflowed = ctrs.shred(self.config.shred_strategy);
        if overflowed {
            // Only ShredStrategy::MinorIncrementAll can land here; no
            // single block is exempt from re-encryption, so pass an
            // out-of-band skip index by re-encrypting all live blocks.
            self.stats.reencryptions.inc();
            for b in 0..BLOCKS_PER_PAGE {
                if old_ctrs.is_shredded(b) {
                    continue;
                }
                let addr = page.block_addr(b);
                self.sched(now, self.config.nvm_timing.read_cycles());
                let cipher = self.nvm_read_data(addr)?;
                self.stats.mem.reads.inc();
                let plain = self.decrypt_ctr(addr, &old_ctrs, &cipher)?;
                self.deuce_meta.remove(&addr.raw());
                let engine = engine_of(&self.ctr, "ctr")?;
                let new_cipher = engine.encrypt_line(&ctrs.iv(page.raw(), b), &plain);
                self.sched(now, self.config.nvm_timing.write_cycles());
                self.nvm_write_data(addr, &new_cipher)?;
                self.stats.mem.writes.inc();
            }
        }
        // Drop DEUCE state: the page restarts from scratch.
        for b in 0..BLOCKS_PER_PAGE {
            self.deuce_meta.remove(&page.block_addr(b).raw());
        }
        self.install_counters(page, ctrs, true, now)?;
        Ok(latency)
    }

    /// Shreds a contiguous run of pages — the §5 `clear_huge_page`
    /// discipline: a 2 MiB or 1 GiB page is shredded by issuing one shred
    /// command per 4 KiB page, with no further hardware support needed.
    /// Returns the accumulated latency.
    ///
    /// # Errors
    ///
    /// As for [`MemoryController::shred_page`]; shreds already performed
    /// when an error occurs are not rolled back.
    pub fn shred_page_run(
        &mut self,
        first: PageId,
        count: u64,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        let mut elapsed = Cycles::ZERO;
        for i in 0..count {
            elapsed +=
                self.shred_page_at(PageId::new(first.raw() + i), kernel_mode, now + elapsed)?;
        }
        Ok(elapsed)
    }

    /// Registers `page` as enclave-owned (§4.1): while registered, its
    /// shredding is the *hardware's* responsibility — the enclave
    /// machinery calls [`MemoryController::enclave_dealloc`] on teardown,
    /// so data privacy does not depend on a trusted OS.
    ///
    /// # Errors
    ///
    /// [`Error::AddrOutOfRange`] for pages outside data memory.
    pub fn enclave_register(&mut self, page: PageId) -> Result<()> {
        if page.base_addr().raw() >= self.config.data_capacity {
            return Err(Error::AddrOutOfRange {
                addr: page.base_addr(),
                capacity: self.config.data_capacity,
            });
        }
        self.enclave_pages.insert(page.raw());
        Ok(())
    }

    /// Hardware-triggered shred of an enclave page on deallocation. Does
    /// not require kernel mode — the trust anchor is the enclave
    /// machinery itself, which only deallocates pages it owns.
    ///
    /// # Errors
    ///
    /// [`Error::PageNotOwned`] when `page` is not enclave-registered;
    /// shred-path errors otherwise.
    pub fn enclave_dealloc(&mut self, page: PageId, now: Cycles) -> Result<Cycles> {
        if !self.enclave_pages.remove(&page.raw()) {
            return Err(Error::PageNotOwned { page });
        }
        // Hardware path: bypasses the kernel-mode check by construction.
        self.shred_page_at(page, true, now)
    }

    /// Whether `page` is currently enclave-owned.
    pub(crate) fn is_enclave_page(&self, page: PageId) -> bool {
        self.enclave_pages.contains(&page.raw())
    }

    /// Architectural MMIO write (the kernel's `shred` hint, §4.3 step 1).
    ///
    /// Decoding ([`mmio::decode`]) and execution ([`MmioOp::apply`]) are
    /// separate: privilege is enforced once, on the executor path, for
    /// every decoded register.
    ///
    /// # Errors
    ///
    /// [`Error::PrivilegeViolation`] for user-mode writers (to any MMIO
    /// address — probing the window is itself privileged);
    /// [`Error::MalformedMmio`] for a kernel write of an invalid value
    /// to a known register. Kernel writes to unknown registers are
    /// ignored (returning a bus-write latency of 1 cycle).
    pub fn mmio_write(
        &mut self,
        reg: PhysAddr,
        value: u64,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        match mmio::decode(reg, value) {
            Ok(op) => op.apply(self, kernel_mode, now),
            Err(_) if !kernel_mode => {
                self.stats.shred_denied.inc();
                Err(Error::PrivilegeViolation { addr: reg })
            }
            Err(mmio::MmioError::UnknownRegister { .. }) => Ok(Cycles::new(1)),
            Err(e @ mmio::MmioError::MalformedValue { .. }) => Err(e.into_error()),
        }
    }

    /// Cycles until all posted writes have drained, from `now`
    /// (`sfence`/`pcommit` semantics, §4.3).
    pub fn fence(&self, now: Cycles) -> Cycles {
        self.channels.all_idle_at().saturating_sub(now)
    }

    /// `sfence`/`pcommit` with write-queue semantics: drains every queued
    /// write, then waits for the channels to go idle.
    ///
    /// # Errors
    ///
    /// Propagates device write errors from the drain.
    pub fn fence_drain(&mut self, now: Cycles) -> Result<Cycles> {
        self.op_now = now;
        self.with_seq(SeqTag::DrainEntry, |mc| mc.drain_queue_fully(now))?;
        Ok(self.fence(now))
    }

    /// RowClone-style in-device zeroing \[34\]: writes encrypted zeros to
    /// every block of `page` with full counter maintenance, but without
    /// occupying the memory bus (no channel scheduling). Cells are still
    /// programmed — the writes count. Returns the device-side latency.
    ///
    /// # Errors
    ///
    /// As for [`MemoryController::write_block`].
    pub fn zero_page_in_place(&mut self, page: PageId, now: Cycles) -> Result<Cycles> {
        self.with_seq(SeqTag::DemandWrite, |mc| {
            mc.zero_page_in_place_inner(page, now)
        })
    }

    fn zero_page_in_place_inner(&mut self, page: PageId, now: Cycles) -> Result<Cycles> {
        self.op_now = now;
        for b in 0..BLOCKS_PER_PAGE {
            let addr = page.block_addr(b);
            self.check_data_addr(addr)?;
            crate::protection::backend(self.config.protection).zero_line(self, addr, now)?;
            self.stats.mem.writes.inc();
            self.stats.mem.zeroing_writes.inc();
        }
        self.process_pending_heal(now)?;
        // One array write latency: the device zeroes rows internally in
        // parallel (optimistic, as in the RowClone paper).
        Ok(self.config.nvm_timing.write_cycles())
    }

    /// Counter-mode in-device zeroing of one block — the pre-trait
    /// [`MemoryController::zero_page_in_place`] per-block body.
    pub(crate) fn legacy_zero_line(&mut self, addr: BlockAddr, now: Cycles) -> Result<()> {
        let zero = [0u8; LINE_SIZE];
        let page = addr.page();
        let b = addr.block_in_page();
        match self.config.encryption {
            EncryptionMode::None => {
                self.nvm_write_data(addr, &zero)?;
            }
            EncryptionMode::Ecb => {
                let cipher = engine_of(&self.ecb, "ecb")?.encrypt_line(&zero);
                self.nvm_write_data(addr, &cipher)?;
            }
            EncryptionMode::Ctr => {
                let (mut ctrs, _) = self.fetch_counters(page, now)?;
                let old_ctrs = ctrs;
                if ctrs.bump_for_write(b) == BumpOutcome::Overflowed {
                    self.tracer.emit(now, || TraceEvent::CounterOverflow {
                        page,
                        block: b as u8,
                    });
                    self.reencrypt_page(page, &old_ctrs, &ctrs, b, now)?;
                }
                let engine = engine_of(&self.ctr, "ctr")?;
                let cipher = engine.encrypt_line(&ctrs.iv(page.raw(), b), &zero);
                self.deuce_meta.remove(&addr.raw());
                self.nvm_write_data(addr, &cipher)?;
                self.install_counters(page, ctrs, true, now)?;
            }
        }
        Ok(())
    }

    /// Flushes dirty counter blocks to NVM (battery-backed write-back
    /// behaviour on power-down, or an explicit clean shutdown).
    ///
    /// # Errors
    ///
    /// Propagates NVM write errors.
    pub fn flush_counters(&mut self) -> Result<()> {
        self.with_seq(SeqTag::CounterFlush, Self::flush_counters_inner)
    }

    /// [`MemoryController::flush_counters`] without sequence bracketing.
    /// The crash-time battery flush calls this directly when an
    /// interrupted operation left the journal open: its counter writes
    /// then join that sequence as post-image (redo) entries, while the
    /// interrupted operation's own bumps keep their install-time
    /// pre-images — recovery redoes the durable, undoes the torn.
    fn flush_counters_inner(&mut self) -> Result<()> {
        let dirty: Vec<(BlockAddr, CounterBlock)> = self
            .counter_cache
            .iter()
            .filter(|e| e.dirty)
            .map(|e| (e.addr, e.value))
            .collect();
        for (caddr, ctrs) in dirty {
            let page = PageId::new((caddr.raw() - self.counter_base) / LINE_SIZE as u64);
            self.write_counters_to_nvm(page, &ctrs, Cycles::ZERO)?;
            if let Some(e) = self.counter_cache.get(caddr) {
                e.dirty = false;
            }
        }
        Ok(())
    }

    /// Simulates power loss. Battery-backed and write-through
    /// configurations keep the counters; a volatile write-back counter
    /// cache loses its dirty blocks, rendering the affected pages
    /// unrecoverable (§7.1).
    ///
    /// The persistence domain decides what happens to in-flight state
    /// ([`PersistDomain`]): under eADR, stored energy completes the
    /// in-flight sequence — the write queue drains fully, exactly the
    /// historical behaviour. Under ADR the queue sits *outside* the
    /// persistence domain and its contents vanish; only lines that
    /// already reached the device (possibly a torn prefix from a fired
    /// crash cut) survive, and the ordering journal carries what
    /// [`MemoryController::recover_mut`] needs to restore consistency.
    ///
    /// Every DRAM-backed structure dies here in both domains: the
    /// counter cache is rebuilt cold, deferred-heal flags drop, and the
    /// device's own power cycle clears its volatile banks.
    ///
    /// # Errors
    ///
    /// Propagates NVM write errors from the battery-backed flush.
    pub fn power_loss(&mut self) -> Result<()> {
        self.persist.armed = None;
        let was_cut = self.persist.cut_fired;
        self.persist.cut_fired = false;
        match self.config.persist_domain {
            PersistDomain::Eadr => {
                // Flush-on-fail: queued writes always reach the device.
                self.drain_queue_fully(Cycles::ZERO)?;
            }
            PersistDomain::Adr => {
                if let Some(wq) = &mut self.wqueue {
                    wq.clear();
                }
            }
        }
        match self.config.counter_persistence {
            CounterPersistence::BatteryBackedWriteBack => {
                if was_cut && self.persist.header_written {
                    // The battery flushes whatever the cache holds.
                    // Appending to the still-open journal sequence as
                    // *post-images* (redo) keeps counters of completed
                    // operations — whose data is already durable — from
                    // being rolled back; any counter the interrupted
                    // operation itself bumped was journaled as a
                    // pre-image at install time, and recovery's
                    // undo-after-redo ordering restores it regardless.
                    let was = self.persist.victim_flush;
                    self.persist.victim_flush = true;
                    let r = self.flush_counters_inner();
                    self.persist.victim_flush = was;
                    r?;
                } else {
                    self.flush_counters()?;
                }
            }
            CounterPersistence::WriteThrough => {}
            CounterPersistence::VolatileWriteBack => {
                let lost_dirty = self.counter_cache.iter().any(|e| e.dirty);
                if lost_dirty {
                    self.counters_lost = true;
                }
            }
        }
        // Volatile controller state dies with power. `pending_heal` is
        // empty between operations; clearing it here pins that any heal
        // deferred by an interrupted operation is dropped, not replayed
        // against post-recovery state.
        self.pending_heal.clear();
        self.persist.depth = 0;
        self.persist.tag = None;
        self.persist.victim_flush = false;
        self.counter_cache = SetAssocCache::new(self.counter_cache.config().clone());
        self.nvm.power_cycle();
        Ok(())
    }

    /// Post-restart recovery check: verifies that the counters needed to
    /// decrypt data are available.
    ///
    /// # Errors
    ///
    /// [`Error::CounterLoss`] when a prior crash dropped dirty counters.
    pub fn recover(&self) -> Result<()> {
        if self.counters_lost {
            Err(Error::CounterLoss)
        } else {
            Ok(())
        }
    }

    /// The reboot recovery protocol. Runs after
    /// [`MemoryController::power_loss`], before the first demand access:
    ///
    /// 1. The [`MemoryController::recover`] counter-availability check.
    /// 2. **Journal resolution** (ADR only): an open sequence means
    ///    power died mid-operation. Redo entries (counter writebacks of
    ///    already-durable data) are re-applied in order; undo entries
    ///    (the interrupted operation's data, spare, and counter
    ///    pre-images) are restored in reverse, rolling Merkle leaves and
    ///    the spare-pool map back with them. The journal is then marked
    ///    closed — replaying recovery is idempotent.
    /// 3. **Integrity re-verification**: every persisted counter line is
    ///    checked against the in-memory Merkle tree. A mismatch that
    ///    recovery could not repair is a hard
    ///    [`Error::IntegrityViolation`], never a silently served read.
    /// 4. **Shred census**: counts pages whose persisted counters are
    ///    fully shredded under a non-zero major — re-establishing that
    ///    shredded pages zero-fill (their minors are all 0) before any
    ///    read is served.
    ///
    /// Calling it twice is equivalent to calling it once (the second
    /// call finds a closed journal and repairs nothing).
    ///
    /// # Errors
    ///
    /// [`Error::CounterLoss`] as for [`MemoryController::recover`];
    /// [`Error::IntegrityViolation`] when a counter line fails
    /// re-verification after journal resolution; NVM write errors from
    /// the rollback writes.
    pub fn recover_mut(&mut self) -> Result<RecoveryReport> {
        self.recover()?;
        let mut report = RecoveryReport::default();
        if self.adr() {
            let header = self.nvm.peek(self.journal_line_addr(0));
            if let Some((open, tag, seq_no)) = persist::decode_header(&header) {
                self.persist.next_seq = seq_no + 1;
                if open {
                    report.journal_open = true;
                    report.interrupted_tag = tag;
                    let mut entries = Vec::new();
                    for i in 0..persist::JOURNAL_MAX_ENTRIES as u64 {
                        let eh = self.nvm.peek(self.journal_line_addr(1 + 2 * i));
                        let payload = self.nvm.peek(self.journal_line_addr(2 + 2 * i));
                        match persist::decode_entry(&eh, seq_no, payload) {
                            Some(e) => entries.push(e),
                            None => break,
                        }
                    }
                    // Roll forward: metadata writebacks of durable data.
                    for e in &entries {
                        if e.kind == EntryKind::CounterRedo {
                            self.nvm.write_line(e.target, &e.payload)?;
                            if let Some(merkle) = &mut self.merkle {
                                merkle
                                    .update_leaf(persist::entry_page(e).raw() as usize, &e.payload);
                            }
                            report.redone += 1;
                        }
                    }
                    // Roll back the interrupted operation, newest first.
                    for e in entries.iter().rev() {
                        match e.kind {
                            EntryKind::DataUndo => {
                                self.nvm.write_line(e.target, &e.payload)?;
                                report.undone += 1;
                            }
                            EntryKind::CounterUndo => {
                                self.nvm.write_line(e.target, &e.payload)?;
                                if let Some(merkle) = &mut self.merkle {
                                    merkle.update_leaf(
                                        persist::entry_page(e).raw() as usize,
                                        &e.payload,
                                    );
                                }
                                report.undone += 1;
                            }
                            EntryKind::RemapAlloc => {
                                if self.heal.undo_remap(e.target, BlockAddr::new(e.aux)) {
                                    report.remaps_rolled_back += 1;
                                }
                                if e.was_quarantined {
                                    self.heal.quarantine(e.target);
                                }
                            }
                            EntryKind::CounterRedo => {}
                        }
                    }
                    self.nvm.write_line(
                        self.journal_line_addr(0),
                        &persist::encode_header(false, 0, seq_no),
                    )?;
                }
            }
            self.persist.header_written = false;
            self.persist.journaled.clear();
            self.persist.entry_count = 0;
            self.persist.depth = 0;
            self.persist.tag = None;
            self.persist.victim_flush = false;
        }
        report.root_verified = true;
        crate::protection::backend(self.config.protection).recovery_reverify(self, &mut report)?;
        Ok(report)
    }

    /// Re-verifies every persisted counter line against the in-memory
    /// Merkle tree (no-op when integrity is off).
    fn reverify_counter_region(&self) -> Result<()> {
        let frames = self.config.frames();
        if self.merkle.is_some() {
            for p in 0..frames {
                let caddr = BlockAddr::new(self.counter_base + p * LINE_SIZE as u64);
                let line = self.nvm.peek(caddr);
                let ok = self
                    .merkle
                    .as_ref()
                    .is_some_and(|m| m.verify_leaf(p as usize, &line));
                if !ok {
                    return Err(Error::IntegrityViolation {
                        detail: format!(
                            "recovery: persisted counter line of page {p} does not match the \
                             Merkle tree"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Counts pages whose persisted metadata shows them fully shredded
    /// under a non-zero major counter.
    fn census_shredded(&self) -> u64 {
        let frames = self.config.frames();
        let mut shredded = 0u64;
        for p in 0..frames {
            let caddr = BlockAddr::new(self.counter_base + p * LINE_SIZE as u64);
            let ctrs = CounterBlock::from_line(&self.nvm.peek(caddr));
            if ctrs.major > 0 && (0..BLOCKS_PER_PAGE).all(|b| ctrs.is_shredded(b)) {
                shredded += 1;
            }
        }
        shredded
    }

    /// Counter-mode reboot checks — the pre-trait
    /// [`MemoryController::recover_mut`] tail: counter-region
    /// re-verification plus the shred census (counter configs only).
    pub(crate) fn legacy_recovery_reverify(&mut self, report: &mut RecoveryReport) -> Result<()> {
        self.reverify_counter_region()?;
        if self.config.encryption == EncryptionMode::Ctr {
            report.shredded_pages += self.census_shredded();
        }
        Ok(())
    }

    /// Number of NVM counter lines maintained as counter-mode metadata
    /// (zero for the unencrypted/ECB baselines, which keep no
    /// per-line protection metadata).
    pub(crate) fn counter_metadata_lines(&self) -> u64 {
        match self.config.encryption {
            EncryptionMode::Ctr => self.config.frames(),
            EncryptionMode::None | EncryptionMode::Ecb => 0,
        }
    }

    // ------------------------------------------------------------------
    // Scattered two-share backend (DESIGN.md §15).
    //
    // Every line is stored as two shares in disjoint NVM regions: a
    // uniform-random share in the data region and the XOR-masked share
    // in the mask region (modeling a second DIMM). Either share alone
    // is statistically independent of the plaintext; shredding discards
    // the mask share. The counter region is reused as block-liveness
    // metadata (minor 0 = dead → zero-fill), so the counter cache,
    // Merkle tree, journal, and recovery machinery all apply verbatim.
    // ------------------------------------------------------------------

    /// Device address of the mask share backing logical line `addr`.
    fn mask_addr(&self, addr: BlockAddr) -> BlockAddr {
        BlockAddr::new(self.mask_base + addr.raw())
    }

    /// Scattered read: zero-fill for dead blocks, otherwise fetch both
    /// shares (in parallel across regions) and recombine.
    pub(crate) fn scattered_read_line(
        &mut self,
        addr: BlockAddr,
        now: Cycles,
    ) -> Result<ReadResult> {
        let page = addr.page();
        let block = addr.block_in_page();
        let (ctrs, ctr_lat) = self.fetch_counters(page, now)?;
        if ctrs.is_shredded(block) {
            // Dead block (never written, or its pad was discarded):
            // zero-fill without touching either share region.
            self.stats.mem.zero_fill_reads.inc();
            self.profile.charge(Stage::ZeroFill, ctr_lat);
            self.tracer.emit(now, || TraceEvent::ZeroFillRead { addr });
            return Ok(ReadResult {
                data: [0u8; LINE_SIZE],
                latency: ctr_lat,
                zero_filled: true,
            });
        }
        // The two regions are independent banks: share reads overlap,
        // and only the XOR recombination is serialised.
        let read_a = self.sched(now + ctr_lat, self.config.nvm_timing.read_cycles());
        self.profile.charge(Stage::NvmRead, read_a);
        let share_a = self.nvm_read_data(addr)?;
        self.stats.mem.reads.inc();
        let read_b = self.sched(now + ctr_lat, self.config.nvm_timing.read_cycles());
        self.profile.charge(Stage::NvmRead, read_b);
        let mask = self.mask_addr(addr);
        // The mask region has a fixed layout (line → line), so like the
        // counter region it is not remappable — but transient read
        // errors still go through the retry policy.
        let share_b = self.read_line_healing(mask)?.into_data();
        self.stats.prot.share_reads.inc();
        self.profile.charge(Stage::AesCtr, self.config.xor_latency);
        let data = ss_crypto::share::recombine_shares(&share_a, &share_b);
        self.stats.prot.recombines.inc();
        self.tracer
            .emit(now, || TraceEvent::ShareRecombine { addr });
        let latency =
            ctr_lat + Cycles::new(read_a.raw().max(read_b.raw())) + self.config.xor_latency;
        Ok(ReadResult {
            data,
            latency,
            zero_filled: false,
        })
    }

    /// Scattered write: split `data` into a fresh share pair and persist
    /// both halves; first write to a dead block marks it live. `bus` is
    /// false on the in-device zeroing path (no channel scheduling).
    pub(crate) fn scattered_write_line(
        &mut self,
        addr: BlockAddr,
        data: &Line,
        now: Cycles,
        bus: bool,
    ) -> Result<()> {
        let page = addr.page();
        let block = addr.block_in_page();
        let (mut ctrs, _lat) = self.fetch_counters(page, now)?;
        // Every write draws a fresh pad: pads are never reused across
        // values, so old mask captures are useless against new data.
        let share_a = ss_crypto::share::gen_share(&mut self.share_rng);
        let share_b = ss_crypto::share::mask_share(data, &share_a);
        if bus {
            let write_lat = self.config.nvm_timing.write_cycles();
            self.sched(now, write_lat);
            self.profile.charge(Stage::NvmWrite, write_lat);
            let mask_lat = self.config.nvm_timing.write_cycles();
            self.sched(now, mask_lat);
            self.profile.charge(Stage::NvmWrite, mask_lat);
        }
        self.nvm_write_data(addr, &share_a)?;
        let mask = self.mask_addr(addr);
        self.persist_line(mask, &share_b, None)?;
        self.stats.prot.share_writes.inc();
        self.stats.prot.mask_writes.inc();
        if ctrs.is_shredded(block) {
            // First write since shred (or boot): mark the block live so
            // reads recombine instead of zero-filling.
            let _ = ctrs.bump_for_write(block);
            self.install_counters(page, ctrs, true, now)?;
        }
        Ok(())
    }

    /// Scattered shred: overwrite every live block's mask share with
    /// fresh randomness (destroying the pad pairing) and mark the page
    /// dead. The data-region shares are untouched — alone they are
    /// uniform noise.
    pub(crate) fn scattered_shred_page(&mut self, page: PageId, now: Cycles) -> Result<Cycles> {
        let (mut ctrs, mut latency) = self.fetch_counters(page, now)?;
        let mut discarded = 0u32;
        for b in 0..BLOCKS_PER_PAGE {
            if ctrs.is_shredded(b) {
                continue;
            }
            let addr = page.block_addr(b);
            let fresh = ss_crypto::share::gen_share(&mut self.share_rng);
            self.sched(now, self.config.nvm_timing.write_cycles());
            self.profile
                .charge(Stage::NvmWrite, self.config.nvm_timing.write_cycles());
            let mask = self.mask_addr(addr);
            self.persist_line(mask, &fresh, None)?;
            self.stats.prot.mask_writes.inc();
            self.stats.prot.mask_discards.inc();
            discarded += 1;
        }
        if discarded > 0 {
            // Mask banks program in parallel; one write latency lands on
            // the critical path.
            latency += self.config.nvm_timing.write_cycles();
            self.tracer.emit(now, || TraceEvent::MaskDiscard {
                page,
                lines: discarded,
            });
        }
        let _ = ctrs.shred(self.config.shred_strategy);
        self.install_counters(page, ctrs, true, now)?;
        Ok(latency)
    }

    /// Scattered rescue: a dead block's worn slot is retired outright; a
    /// live block is recombined and re-split under a *fresh* pad, so a
    /// spare never inherits previously used share material.
    pub(crate) fn scattered_rescue_remap(&mut self, addr: BlockAddr, now: Cycles) -> Result<()> {
        let dev = self.device_addr(addr);
        let slot = self.heal.redirect(dev);
        let page = addr.page();
        let block = addr.block_in_page();
        let (ctrs, _) = self.fetch_counters(page, now)?;
        if ctrs.is_shredded(block) {
            // Nothing live to rescue, and the block must stay dead:
            // retire the worn slot only (same discipline as the
            // counter-mode shredded arm).
            let Some(new_slot) = self.heal.allocate(dev) else {
                return self.fail_remap(dev);
            };
            self.journal_remap_alloc(dev, new_slot, false)?;
            self.stats.health.remaps.inc();
            self.tracer.emit(now, || TraceEvent::LineRemap {
                addr: dev,
                ok: true,
            });
            return Ok(());
        }
        let share_a = match self.read_line_healing(slot) {
            Ok(r) => r.into_data(),
            Err(Error::UncorrectableEcc { .. }) => return self.fail_remap(dev),
            Err(e) => return Err(e),
        };
        let mask = self.mask_addr(addr);
        let share_b = self.read_line_healing(mask)?.into_data();
        let plain = ss_crypto::share::recombine_shares(&share_a, &share_b);
        self.stats.prot.recombines.inc();
        let new_a = ss_crypto::share::gen_share(&mut self.share_rng);
        let new_b = ss_crypto::share::mask_share(&plain, &new_a);
        let Some(new_slot) = self.heal.allocate(dev) else {
            return self.fail_remap(dev);
        };
        self.journal_remap_alloc(dev, new_slot, false)?;
        // Commit order: spare share first, then the mask write makes the
        // fresh pair authoritative (journal pre-images cover a cut).
        self.sched(now, self.config.nvm_timing.write_cycles());
        self.persist_line(new_slot, &new_a, None)?;
        self.sched(now, self.config.nvm_timing.write_cycles());
        self.persist_line(mask, &new_b, None)?;
        self.stats.prot.share_writes.inc();
        self.stats.prot.mask_writes.inc();
        self.stats.prot.fresh_share_rescues.inc();
        self.stats.health.remaps.inc();
        self.tracer.emit(now, || TraceEvent::LineRemap {
            addr: dev,
            ok: true,
        });
        Ok(())
    }

    /// Scattered observation path: dead blocks observe zeros; live
    /// blocks recombine both shares (no stats, no timing).
    pub(crate) fn scattered_peek_plaintext(&mut self, addr: BlockAddr) -> Result<Line> {
        let page = addr.page();
        let caddr = self.counter_addr(page);
        let ctrs = match self.counter_cache.get(caddr) {
            Some(e) => e.value,
            None => CounterBlock::from_line(&self.nvm.peek(caddr)),
        };
        if ctrs.is_shredded(addr.block_in_page()) {
            return Ok([0u8; LINE_SIZE]);
        }
        let share_a = self.nvm_peek_data(addr);
        let share_b = self.nvm.peek(self.mask_addr(addr));
        Ok(ss_crypto::share::recombine_shares(&share_a, &share_b))
    }

    /// Scattered reboot checks: the liveness metadata carries the same
    /// integrity obligations as encryption counters, and the shred
    /// census applies unconditionally (liveness is not tied to an
    /// encryption mode).
    pub(crate) fn scattered_recovery_reverify(
        &mut self,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        self.reverify_counter_region()?;
        report.shredded_pages += self.census_shredded();
        Ok(())
    }

    /// NVM metadata footprint of the scattered backend: one liveness
    /// line per page plus one mask line per data line.
    pub(crate) fn scattered_metadata_lines(&self) -> u64 {
        self.config.frames() + self.config.data_capacity / LINE_SIZE as u64
    }

    // ------------------------------------------------------------------
    // Attack-model and test surfaces (§4.1).
    // ------------------------------------------------------------------

    /// An attacker's cold scan of the data region (raw NVM contents).
    /// The spare pool is part of the scan: remapped lines physically
    /// live there, and retired originals still hold their last
    /// ciphertext — both are visible to a chip-level attacker.
    pub(crate) fn cold_scan_data(&self) -> Vec<(BlockAddr, Line)> {
        self.nvm
            .cold_scan()
            .filter(|(a, _)| {
                a.raw() < self.counter_base
                    || (a.raw() >= self.spare_base && a.raw() < self.journal_base)
            })
            .map(|(a, l)| (a, *l))
            .collect()
    }

    /// An attacker's cold scan of the spare-line pool only. Remapped
    /// lines physically live here; the pool is the residue surface a
    /// remap-probe attack inspects for rescued-but-unshredded data.
    pub(crate) fn cold_scan_spares(&self) -> Vec<(BlockAddr, Line)> {
        self.nvm
            .cold_scan()
            .filter(|(a, _)| a.raw() >= self.spare_base && a.raw() < self.journal_base)
            .map(|(a, l)| (a, *l))
            .collect()
    }

    /// An attacker's cold scan of the persisted counter region, keyed by
    /// owning page. This is exactly the state a rollback attacker
    /// captures at one power cycle and replays at the next.
    pub(crate) fn cold_scan_counters(&self) -> Vec<(PageId, Line)> {
        self.nvm
            .cold_scan()
            .filter(|(a, _)| a.raw() >= self.counter_base && a.raw() < self.spare_base)
            .map(|(a, l)| {
                (
                    PageId::new((a.raw() - self.counter_base) / LINE_SIZE as u64),
                    *l,
                )
            })
            .collect()
    }

    /// Snapshot of the on-chip Merkle root (`None` when integrity is
    /// off). The root is *inside* the trust boundary — an adversary can
    /// replay every persisted counter line but cannot roll this back,
    /// which is why rollback is detected rather than silently accepted.
    pub(crate) fn merkle_root(&self) -> Option<ss_crypto::Digest> {
        self.merkle.as_ref().map(MerkleTree::root)
    }

    /// An attacker overwriting a *data* line in NVM (man-in-the-middle /
    /// overwrite attacks).
    pub(crate) fn nvm_tamper(&mut self, addr: BlockAddr, line: Line) {
        let dev = self.heal.redirect(self.device_addr(addr));
        self.nvm.tamper(dev, line);
    }

    /// Reads the raw counter line of `page` from NVM (attacker capture
    /// for replay experiments).
    pub(crate) fn nvm_peek_counter(&self, page: PageId) -> Line {
        self.nvm.peek(self.counter_addr(page))
    }

    /// An attacker overwriting a counter line in NVM (replay/tamper).
    /// The next counter-cache miss for this page must fail verification
    /// when integrity is enabled. Only effective once the cached copy is
    /// evicted or dropped; tests combine this with [`Self::drop_counter_cache`].
    pub(crate) fn tamper_counter_line(&mut self, page: PageId, line: Line) {
        let caddr = self.counter_addr(page);
        self.nvm.tamper(caddr, line);
    }

    /// Drops the counter-cache contents *without* flushing (test helper
    /// forcing subsequent NVM counter reads).
    pub(crate) fn drop_counter_cache(&mut self) {
        self.counter_cache = SetAssocCache::new(self.counter_cache.config().clone());
    }

    /// What the running software would observe at `addr`, without stats
    /// or timing side effects (test helper).
    ///
    /// # Errors
    ///
    /// As for [`MemoryController::read_block`].
    pub(crate) fn peek_plaintext(&mut self, addr: BlockAddr) -> Result<Line> {
        self.check_data_addr(addr)?;
        crate::protection::backend(self.config.protection).peek_plaintext(self, addr)
    }

    /// Counter-mode observation path — the pre-trait
    /// [`MemoryController::peek_plaintext`] body.
    pub(crate) fn legacy_peek_plaintext(&mut self, addr: BlockAddr) -> Result<Line> {
        match self.config.encryption {
            EncryptionMode::None => Ok(self.nvm_peek_data(addr)),
            EncryptionMode::Ecb => {
                Ok(engine_of(&self.ecb, "ecb")?.decrypt_line(&self.nvm_peek_data(addr)))
            }
            EncryptionMode::Ctr => {
                let page = addr.page();
                let caddr = self.counter_addr(page);
                let ctrs = match self.counter_cache.get(caddr) {
                    Some(e) => e.value,
                    None => CounterBlock::from_line(&self.nvm.peek(caddr)),
                };
                if self.config.shredder && ctrs.is_shredded(addr.block_in_page()) {
                    return Ok([0u8; LINE_SIZE]);
                }
                let cipher = self.nvm_peek_data(addr);
                self.decrypt_ctr(addr, &ctrs, &cipher)
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault-injection surfaces (driven by the ss-harness crate).
    // ------------------------------------------------------------------

    /// Cumulative NVM write count — the event index that fault plans
    /// schedule against ("power loss after the Nth NVM write").
    pub(crate) fn nvm_writes(&self) -> u64 {
        self.nvm.stats().writes.get()
    }

    /// Current write-queue occupancy (0 when no queue is configured).
    pub(crate) fn write_queue_len(&self) -> usize {
        self.wqueue.as_ref().map_or(0, |q| q.len())
    }

    /// Whether `page`'s counter line is cached and dirty (modified since
    /// it last reached NVM). Checked without disturbing LRU state.
    pub(crate) fn counter_line_dirty(&self, page: PageId) -> bool {
        let caddr = self.counter_addr(page);
        self.counter_cache
            .iter()
            .any(|e| e.addr == caddr && e.dirty)
    }

    /// Writes `page`'s counter line back to NVM if it is cached dirty
    /// (a targeted scrub of one counter-cache frame). Returns whether a
    /// writeback happened.
    ///
    /// # Errors
    ///
    /// Propagates NVM write errors.
    pub(crate) fn flush_counter_line(&mut self, page: PageId) -> Result<bool> {
        let caddr = self.counter_addr(page);
        let dirty = self
            .counter_cache
            .iter()
            .find(|e| e.addr == caddr && e.dirty)
            .map(|e| e.value);
        let Some(ctrs) = dirty else {
            return Ok(false);
        };
        self.write_counters_to_nvm(page, &ctrs, Cycles::ZERO)?;
        if let Some(e) = self.counter_cache.get(caddr) {
            e.dirty = false;
        }
        Ok(true)
    }

    /// Drops `page`'s counter line from the cache *without* writeback —
    /// a transient counter-cache cell fault. Returns whether the line was
    /// present. The next access re-fetches (and Merkle-verifies) the
    /// NVM copy.
    pub(crate) fn drop_counter_cache_line(&mut self, page: PageId) -> bool {
        let caddr = self.counter_addr(page);
        self.counter_cache.invalidate(caddr).is_some()
    }

    /// Flips one stored bit of the *data* line at `addr` (NVM cell
    /// disturb fault), following any wear-levelling remap.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= LINE_SIZE * 8`.
    pub(crate) fn flip_data_bit(&mut self, addr: BlockAddr, bit: usize) {
        let dev = self.heal.redirect(self.device_addr(addr));
        self.nvm.flip_bit(dev, bit);
    }

    /// Flips one stored bit of `page`'s counter line in NVM. With
    /// integrity enabled the next uncached fetch must fail Merkle
    /// verification.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= LINE_SIZE * 8`.
    pub(crate) fn flip_counter_bit(&mut self, page: PageId, bit: usize) {
        let caddr = self.counter_addr(page);
        self.nvm.flip_bit(caddr, bit);
    }

    // ------------------------------------------------------------------
    // Healing surfaces (fault injection + observability).
    // ------------------------------------------------------------------

    /// Injects a one-shot transient read error of `flips` raw bit flips
    /// into the device slot currently backing logical line `addr`
    /// (consumed by the next read attempt of that slot).
    pub(crate) fn inject_data_read_error(&mut self, addr: BlockAddr, flips: u32) {
        let slot = self.heal.redirect(self.device_addr(addr));
        self.nvm.inject_read_error(slot, flips);
    }

    /// Clears a pending injected read error on the slot backing `addr`;
    /// returns whether one was armed (i.e. no read consumed it).
    pub(crate) fn clear_injected_read_error(&mut self, addr: BlockAddr) -> bool {
        let slot = self.heal.redirect(self.device_addr(addr));
        self.nvm.clear_injected_error(slot)
    }

    /// Marks the slot backing `addr` permanently failed with
    /// `weak_bits` stuck weak cells (wear-out / stuck-at fault model).
    pub(crate) fn force_line_failure(&mut self, addr: BlockAddr, weak_bits: u32) {
        let slot = self.heal.redirect(self.device_addr(addr));
        self.nvm.fail_line(slot, weak_bits);
    }

    /// Number of data lines currently remapped into the spare pool.
    pub(crate) fn remapped_lines(&self) -> u64 {
        self.heal.remapped_count()
    }

    /// Number of data lines currently quarantined.
    pub(crate) fn quarantined_lines(&self) -> u64 {
        self.heal.quarantined_count()
    }

    /// Spare lines still available for remapping.
    pub(crate) fn spare_lines_free(&self) -> u64 {
        self.heal.free()
    }

    /// Whether the logical line at `addr` is quarantined.
    pub(crate) fn is_line_quarantined(&self, addr: BlockAddr) -> bool {
        self.heal.is_quarantined(self.device_addr(addr))
    }
}

/// Typed-error access to an optional crypto engine. The encryption
/// mode guarantees the matching engine exists, but the controller and
/// heal paths must never panic (SEC-001): a mode/engine mismatch
/// surfaces as [`Error::InvalidConfig`] the harness can classify.
fn engine_of<'a, T>(engine: &'a Option<T>, mode: &str) -> Result<&'a T> {
    engine.as_ref().ok_or_else(|| Error::InvalidConfig {
        detail: format!("{mode} operation issued without a {mode} engine"),
    })
}

/// Builds the write queue for a configuration, if enabled. Fallible
/// because [`WriteQueue::new`] is: `ControllerConfig::validate` has
/// already vetted the watermarks by the time this runs, so the error
/// arm is unreachable in practice but typed rather than a panic.
fn config_wqueue(config: &ControllerConfig) -> Result<Option<WriteQueue>> {
    config.write_queue.map(WriteQueue::new).transpose()
}

/// Builds the Start-Gap remapper for a configuration, if enabled.
fn config_start_gap(config: &ControllerConfig) -> Option<StartGap> {
    config.wear_leveling.then(|| {
        StartGap::new(
            config.data_capacity / LINE_SIZE as u64,
            config.start_gap_interval,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShredStrategy;

    fn mc() -> MemoryController {
        MemoryController::new(ControllerConfig::small_test()).unwrap()
    }

    fn line(v: u8) -> Line {
        [v; LINE_SIZE]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mc();
        let addr = PageId::new(1).block_addr(2);
        m.write_block(addr, &line(0x7E), false, Cycles::ZERO)
            .unwrap();
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0x7E));
        assert!(!r.zero_filled);
    }

    #[test]
    fn data_is_ciphertext_in_nvm() {
        let mut m = mc();
        let addr = PageId::new(1).block_addr(0);
        m.write_block(addr, &line(0x11), false, Cycles::ZERO)
            .unwrap();
        assert_ne!(m.nvm().peek(addr), line(0x11), "plaintext leaked to NVM");
    }

    #[test]
    fn fresh_page_reads_zero_filled() {
        let mut m = mc();
        let r = m
            .read_block(PageId::new(5).block_addr(9), Cycles::ZERO)
            .unwrap();
        assert!(r.zero_filled);
        assert_eq!(r.data, [0u8; LINE_SIZE]);
        assert_eq!(m.stats().mem.reads.get(), 0, "array untouched");
        assert_eq!(m.stats().mem.zero_fill_reads.get(), 1);
    }

    #[test]
    fn shred_zero_fills_and_writes_nothing() {
        let mut m = mc();
        let page = PageId::new(2);
        for b in 0..4 {
            m.write_block(page.block_addr(b), &line(b as u8 + 1), false, Cycles::ZERO)
                .unwrap();
        }
        let writes_before = m.stats().mem.writes.get();
        m.shred_page(page, true).unwrap();
        assert_eq!(
            m.stats().mem.writes.get(),
            writes_before,
            "shred wrote data"
        );
        assert_eq!(m.stats().shreds.get(), 1);
        for b in 0..4 {
            let r = m.read_block(page.block_addr(b), Cycles::ZERO).unwrap();
            assert!(r.zero_filled);
            assert_eq!(r.data, [0u8; LINE_SIZE]);
        }
    }

    #[test]
    fn shred_makes_old_ciphertext_unintelligible() {
        let mut m = MemoryController::new(ControllerConfig {
            shred_strategy: ShredStrategy::MajorBumpOnly,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let page = PageId::new(3);
        let addr = page.block_addr(0);
        m.write_block(addr, &line(0x55), false, Cycles::ZERO)
            .unwrap();
        m.shred_page(page, true).unwrap();
        // Major bumped, minors kept: a read decrypts with the wrong IV.
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert!(!r.zero_filled, "option 2 cannot zero-fill");
        assert_ne!(r.data, line(0x55), "old plaintext recovered after shred");
        assert_ne!(
            r.data, [0u8; LINE_SIZE],
            "option 2 returns garbage, not zeros"
        );
    }

    #[test]
    fn user_mode_shred_faults() {
        let mut m = mc();
        let err = m.shred_page(PageId::new(0), false).unwrap_err();
        assert!(matches!(err, Error::PrivilegeViolation { .. }));
        assert_eq!(m.stats().shred_denied.get(), 1);
    }

    #[test]
    fn mmio_shred_path() {
        let mut m = mc();
        let page = PageId::new(4);
        m.write_block(page.block_addr(0), &line(1), false, Cycles::ZERO)
            .unwrap();
        m.mmio_write(mmio::SHRED_REG, page.base_addr().raw(), true, Cycles::ZERO)
            .unwrap();
        assert_eq!(m.stats().shreds.get(), 1);
        assert!(
            m.read_block(page.block_addr(0), Cycles::ZERO)
                .unwrap()
                .zero_filled
        );
        // Unknown register: benign.
        assert!(m
            .mmio_write(PhysAddr::new(0xF000), 0, true, Cycles::ZERO)
            .is_ok());
        // User-mode MMIO write: exception.
        assert!(m
            .mmio_write(mmio::SHRED_REG, 0, false, Cycles::ZERO)
            .is_err());
    }

    #[test]
    fn shredder_disabled_rejects_shred() {
        let mut m = MemoryController::new(ControllerConfig {
            data_capacity: 1 << 20,
            counter_cache_bytes: 16 << 10,
            ..ControllerConfig::encrypted_baseline()
        })
        .unwrap();
        assert!(m.shred_page(PageId::new(0), true).is_err());
    }

    #[test]
    fn baseline_fresh_read_is_not_zero_filled() {
        let mut m = MemoryController::new(ControllerConfig {
            data_capacity: 1 << 20,
            counter_cache_bytes: 16 << 10,
            ..ControllerConfig::encrypted_baseline()
        })
        .unwrap();
        let r = m
            .read_block(PageId::new(1).block_addr(0), Cycles::ZERO)
            .unwrap();
        assert!(!r.zero_filled);
        assert_eq!(m.stats().mem.reads.get(), 1);
    }

    #[test]
    fn zero_fill_read_is_faster_than_array_read() {
        let mut m = mc();
        // Warm the counter cache: the first access pays a counter fetch.
        m.read_block(PageId::new(7).block_addr(1), Cycles::ZERO)
            .unwrap();
        let fresh = m
            .read_block(PageId::new(7).block_addr(0), Cycles::ZERO)
            .unwrap();
        let addr = PageId::new(8).block_addr(0);
        m.write_block(addr, &line(1), false, Cycles::ZERO).unwrap();
        let real = m.read_block(addr, Cycles::new(100_000)).unwrap();
        assert!(
            fresh.latency.raw() * 3 < real.latency.raw(),
            "zero-fill {} vs array {}",
            fresh.latency,
            real.latency
        );
    }

    #[test]
    fn minor_overflow_triggers_reencryption() {
        let mut m = mc();
        let page = PageId::new(9);
        let addr = page.block_addr(0);
        m.write_block(page.block_addr(1), &line(0xEE), false, Cycles::ZERO)
            .unwrap();
        for i in 0..128 {
            m.write_block(addr, &line(i as u8), false, Cycles::ZERO)
                .unwrap();
        }
        assert_eq!(m.stats().reencryptions.get(), 1);
        // Both blocks still readable after re-encryption.
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(127));
        assert_eq!(
            m.read_block(page.block_addr(1), Cycles::ZERO).unwrap().data,
            line(0xEE)
        );
    }

    #[test]
    fn counter_tamper_detected_after_cache_drop() {
        let mut m = mc();
        let page = PageId::new(1);
        m.write_block(page.block_addr(0), &line(1), false, Cycles::ZERO)
            .unwrap();
        m.flush_counters().unwrap();
        m.tamper_counter_line(page, line(0xAD));
        m.drop_counter_cache();
        let err = m.read_block(page.block_addr(0), Cycles::ZERO).unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation { .. }));
    }

    #[test]
    fn battery_backed_counters_survive_power_loss() {
        let mut m = mc();
        let page = PageId::new(2);
        m.write_block(page.block_addr(3), &line(0x3C), false, Cycles::ZERO)
            .unwrap();
        m.power_loss().unwrap();
        m.recover().unwrap();
        assert_eq!(
            m.read_block(page.block_addr(3), Cycles::ZERO).unwrap().data,
            line(0x3C)
        );
    }

    #[test]
    fn volatile_counters_lost_on_crash() {
        let mut m = MemoryController::new(ControllerConfig {
            counter_persistence: CounterPersistence::VolatileWriteBack,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        m.write_block(PageId::new(1).block_addr(0), &line(9), false, Cycles::ZERO)
            .unwrap();
        m.power_loss().unwrap();
        assert!(matches!(m.recover(), Err(Error::CounterLoss)));
    }

    #[test]
    fn write_through_counters_survive_crash() {
        let mut m = MemoryController::new(ControllerConfig {
            counter_persistence: CounterPersistence::WriteThrough,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let addr = PageId::new(1).block_addr(0);
        m.write_block(addr, &line(9), false, Cycles::ZERO).unwrap();
        m.power_loss().unwrap();
        m.recover().unwrap();
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(9));
    }

    #[test]
    fn zeroing_writes_classified() {
        let mut m = mc();
        m.write_block(PageId::new(0).block_addr(0), &line(0), true, Cycles::ZERO)
            .unwrap();
        m.write_block(PageId::new(0).block_addr(1), &line(1), false, Cycles::ZERO)
            .unwrap();
        assert_eq!(m.stats().mem.zeroing_writes.get(), 1);
        assert_eq!(m.stats().mem.writes.get(), 2);
    }

    #[test]
    fn out_of_range_data_access_rejected() {
        let mut m = mc();
        let oob = BlockAddr::new(1 << 20);
        assert!(m.read_block(oob, Cycles::ZERO).is_err());
        assert!(m.write_block(oob, &line(0), false, Cycles::ZERO).is_err());
        assert!(m.shred_page(PageId::new(256), true).is_err());
    }

    #[test]
    fn deuce_roundtrip_and_reduced_flips() {
        let mut m = MemoryController::new(ControllerConfig {
            deuce: true,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let addr = PageId::new(1).block_addr(0);
        let mut data = line(0x10);
        m.write_block(addr, &data, false, Cycles::ZERO).unwrap();
        let cipher_before = m.nvm().peek(addr);
        // Modify a single chunk and rewrite.
        data[0] ^= 0xFF;
        m.write_block(addr, &data, false, Cycles::ZERO).unwrap();
        let cipher_after = m.nvm().peek(addr);
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, data);
        // Chunks 1..4 ciphertext unchanged (DEUCE property).
        assert_eq!(cipher_before[16..], cipher_after[16..]);
        assert_ne!(cipher_before[..16], cipher_after[..16]);
    }

    #[test]
    fn deuce_survives_shred() {
        let mut m = MemoryController::new(ControllerConfig {
            deuce: true,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let page = PageId::new(1);
        let addr = page.block_addr(0);
        let mut data = line(0x20);
        m.write_block(addr, &data, false, Cycles::ZERO).unwrap();
        data[5] = 0;
        m.write_block(addr, &data, false, Cycles::ZERO).unwrap();
        m.shred_page(page, true).unwrap();
        assert!(m.read_block(addr, Cycles::ZERO).unwrap().zero_filled);
        m.write_block(addr, &line(0x30), false, Cycles::ZERO)
            .unwrap();
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(0x30));
    }

    #[test]
    fn deuce_many_rewrites_stay_consistent() {
        let mut m = MemoryController::new(ControllerConfig {
            deuce: true,
            deuce_epoch: 4,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let addr = PageId::new(2).block_addr(7);
        let mut rng = ss_common::DetRng::new(5);
        let mut data = line(0);
        m.write_block(addr, &data, false, Cycles::ZERO).unwrap();
        for _ in 0..300 {
            // Mutate a random byte (often leaving some chunks unchanged).
            let i = rng.below(LINE_SIZE as u64) as usize;
            data[i] = rng.next_u64() as u8;
            m.write_block(addr, &data, false, Cycles::ZERO).unwrap();
            assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, data);
        }
    }

    #[test]
    fn plain_controller_leaks_plaintext() {
        let mut m = MemoryController::new(ControllerConfig {
            data_capacity: 1 << 20,
            ..ControllerConfig::plain()
        })
        .unwrap();
        let addr = PageId::new(0).block_addr(0);
        m.write_block(addr, &line(0x77), false, Cycles::ZERO)
            .unwrap();
        let scan = m.cold_scan_data();
        assert!(
            scan.iter().any(|(_, l)| *l == line(0x77)),
            "remanence attack failed?!"
        );
    }

    #[test]
    fn ecb_controller_roundtrips_but_leaks_equality() {
        let mut m = MemoryController::new(ControllerConfig {
            data_capacity: 1 << 20,
            encryption: EncryptionMode::Ecb,
            shredder: false,
            integrity: false,
            ..ControllerConfig::default()
        })
        .unwrap();
        let a0 = PageId::new(0).block_addr(0);
        let a1 = PageId::new(0).block_addr(1);
        m.write_block(a0, &line(0x44), false, Cycles::ZERO).unwrap();
        m.write_block(a1, &line(0x44), false, Cycles::ZERO).unwrap();
        assert_eq!(m.read_block(a0, Cycles::ZERO).unwrap().data, line(0x44));
        assert_eq!(m.nvm().peek(a0), m.nvm().peek(a1), "ECB hides equality?");
        assert_ne!(m.nvm().peek(a0), line(0x44));
    }

    #[test]
    fn fence_waits_for_posted_writes() {
        let mut m = mc();
        assert_eq!(m.fence(Cycles::ZERO), Cycles::ZERO);
        m.write_block(PageId::new(0).block_addr(0), &line(1), false, Cycles::ZERO)
            .unwrap();
        assert!(m.fence(Cycles::ZERO) > Cycles::ZERO);
        assert_eq!(m.fence(Cycles::new(1_000_000)), Cycles::ZERO);
    }

    #[test]
    fn huge_page_shreds_as_4k_run() {
        // §5: a 2 MiB huge page is shredded with 512 per-4KiB commands.
        let mut m = MemoryController::new(ControllerConfig {
            data_capacity: 4 << 20,
            counter_cache_bytes: 64 << 10,
            ..ControllerConfig::default()
        })
        .unwrap();
        let first = PageId::new(16);
        let count = 512u64;
        for i in (0..count).step_by(37) {
            m.write_block(
                PageId::new(16 + i).block_addr(0),
                &line(9),
                false,
                Cycles::ZERO,
            )
            .unwrap();
        }
        let writes_before = m.stats().mem.writes.get();
        let lat = m.shred_page_run(first, count, true, Cycles::ZERO).unwrap();
        assert_eq!(m.stats().shreds.get(), count);
        assert_eq!(
            m.stats().mem.writes.get(),
            writes_before,
            "huge shred wrote data"
        );
        assert!(lat.raw() > 0);
        for i in [0u64, 100, 511] {
            let r = m
                .read_block(PageId::new(16 + i).block_addr(0), Cycles::ZERO)
                .unwrap();
            assert!(r.zero_filled);
        }
        // User mode still faults on the first command.
        assert!(m.shred_page_run(first, 2, false, Cycles::ZERO).is_err());
    }

    #[test]
    fn wear_leveling_preserves_contents_and_spreads_writes() {
        // A tiny data region (8 pages = 512 lines) with a gap move per
        // write, so the gap completes rotations within the test.
        let mut m = MemoryController::new(ControllerConfig {
            data_capacity: 32 << 10,
            counter_cache_bytes: 16 << 10,
            wear_leveling: true,
            start_gap_interval: 1,
            ..ControllerConfig::default()
        })
        .unwrap();
        // Write several blocks, hammer one of them, and verify everything
        // still reads back correctly through the rotating mapping.
        let pages: Vec<PageId> = (1..6).map(PageId::new).collect();
        for (i, p) in pages.iter().enumerate() {
            m.write_block(p.block_addr(0), &line(i as u8 + 1), false, Cycles::ZERO)
                .unwrap();
        }
        let hot = pages[0].block_addr(1);
        let hammer = 1200u64;
        for i in 0..hammer {
            m.write_block(hot, &line(i as u8), false, Cycles::ZERO)
                .unwrap();
            assert_eq!(m.read_block(hot, Cycles::ZERO).unwrap().data, line(i as u8));
        }
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(
                m.read_block(p.block_addr(0), Cycles::ZERO).unwrap().data,
                line(i as u8 + 1),
                "block {i} corrupted by gap movement"
            );
        }
        // The hot logical line migrated across device slots as the gap
        // rotated past it, so no single device line absorbed all writes.
        let max = m.nvm().wear().max_wear().map(|(_, n)| n).unwrap_or(0);
        assert!(max < hammer, "wear not levelled: max {max} of {hammer}");
    }

    #[test]
    fn wear_leveling_shred_still_zero_fills() {
        let mut m = MemoryController::new(ControllerConfig {
            wear_leveling: true,
            start_gap_interval: 4,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let page = PageId::new(2);
        for b in 0..8 {
            m.write_block(page.block_addr(b), &line(7), false, Cycles::ZERO)
                .unwrap();
        }
        m.shred_page(page, true).unwrap();
        for b in 0..8 {
            assert!(
                m.read_block(page.block_addr(b), Cycles::ZERO)
                    .unwrap()
                    .zero_filled
            );
        }
    }

    #[test]
    fn enclave_dealloc_shreds_without_kernel_mode() {
        let mut m = mc();
        let page = PageId::new(4);
        m.write_block(page.block_addr(0), &line(0x6A), false, Cycles::ZERO)
            .unwrap();
        m.enclave_register(page).unwrap();
        assert!(m.is_enclave_page(page));
        // The hardware path shreds without the OS privilege check.
        m.enclave_dealloc(page, Cycles::ZERO).unwrap();
        assert!(!m.is_enclave_page(page));
        assert!(
            m.read_block(page.block_addr(0), Cycles::ZERO)
                .unwrap()
                .zero_filled
        );
        // A second dealloc (or one for an unregistered page) is rejected.
        assert!(matches!(
            m.enclave_dealloc(page, Cycles::ZERO),
            Err(Error::PageNotOwned { .. })
        ));
        // Registration validates the address range.
        assert!(m.enclave_register(PageId::new(1 << 20)).is_err());
    }

    fn mc_wq() -> MemoryController {
        MemoryController::new(ControllerConfig {
            write_queue: Some(crate::wqueue::WriteQueueConfig {
                capacity: 16,
                drain_low: 2,
                drain_high: 8,
            }),
            ..ControllerConfig::small_test()
        })
        .unwrap()
    }

    #[test]
    fn write_queue_forwards_reads() {
        let mut m = mc_wq();
        let addr = PageId::new(1).block_addr(0);
        m.write_block(addr, &line(0x3A), false, Cycles::ZERO)
            .unwrap();
        // The write sits in the queue; the device has no ciphertext yet.
        assert_eq!(m.nvm().peek(addr), [0u8; LINE_SIZE]);
        // Reads still observe the new value (forwarding).
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(0x3A));
        assert_eq!(m.write_queue_stats().unwrap().forwards.get(), 1);
    }

    #[test]
    fn write_queue_high_water_drains_in_bursts() {
        let mut m = mc_wq();
        for i in 0..8u64 {
            m.write_block(
                PageId::new(1).block_addr(i as usize),
                &line(i as u8),
                false,
                Cycles::ZERO,
            )
            .unwrap();
        }
        let stats = m.write_queue_stats().unwrap();
        assert_eq!(stats.high_water_drains.get(), 1);
        assert_eq!(stats.drained.get(), 6, "drained to the low mark");
        // Everything still reads correctly (mixed drained/queued).
        for i in 0..8u64 {
            assert_eq!(
                m.read_block(PageId::new(1).block_addr(i as usize), Cycles::ZERO)
                    .unwrap()
                    .data,
                line(i as u8)
            );
        }
    }

    #[test]
    fn write_queue_fence_drain_persists_everything() {
        let mut m = mc_wq();
        let addr = PageId::new(2).block_addr(3);
        m.write_block(addr, &line(0x44), false, Cycles::ZERO)
            .unwrap();
        m.fence_drain(Cycles::ZERO).unwrap();
        assert_ne!(m.nvm().peek(addr), [0u8; LINE_SIZE], "queue not drained");
        // And power loss after a crash keeps the data (ADR domain).
        m.write_block(addr, &line(0x45), false, Cycles::ZERO)
            .unwrap();
        m.power_loss().unwrap();
        m.recover().unwrap();
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(0x45));
    }

    #[test]
    fn write_queue_coalesces_rewrites() {
        let mut m = mc_wq();
        let addr = PageId::new(1).block_addr(0);
        m.write_block(addr, &line(1), false, Cycles::ZERO).unwrap();
        m.write_block(addr, &line(2), false, Cycles::ZERO).unwrap();
        assert_eq!(m.write_queue_stats().unwrap().coalesced.get(), 1);
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(2));
    }

    #[test]
    fn write_queue_shred_and_reencrypt_stay_consistent() {
        let mut m = mc_wq();
        let page = PageId::new(3);
        for b in 0..4 {
            m.write_block(page.block_addr(b), &line(9), false, Cycles::ZERO)
                .unwrap();
        }
        m.shred_page(page, true).unwrap();
        for b in 0..4 {
            assert!(
                m.read_block(page.block_addr(b), Cycles::ZERO)
                    .unwrap()
                    .zero_filled
            );
        }
        // Minor overflow with queued writes: drain-before-reencrypt.
        let addr = page.block_addr(0);
        for i in 0..130u64 {
            m.write_block(addr, &line(i as u8), false, Cycles::ZERO)
                .unwrap();
        }
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(129));
    }

    #[test]
    fn stats_reset_keeps_state() {
        let mut m = mc();
        let addr = PageId::new(1).block_addr(1);
        m.write_block(addr, &line(6), false, Cycles::ZERO).unwrap();
        m.reset_stats();
        assert_eq!(m.stats().mem.writes.get(), 0);
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(6));
    }

    // ------------------------------------------------------------------
    // Self-healing path.
    // ------------------------------------------------------------------

    #[test]
    fn transient_error_recovered_by_retry() {
        let mut m = mc();
        let addr = PageId::new(1).block_addr(3);
        m.write_block(addr, &line(0x5A), false, Cycles::ZERO)
            .unwrap();
        // 2 flips: beyond SECDED correction, within detection — the
        // first read fails, the retry sees a clean line.
        m.inject_data_read_error(addr, 2);
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0x5A));
        assert_eq!(m.stats().health.retries.get(), 1);
        assert_eq!(m.stats().health.retried_ok.get(), 1);
        assert!(m.stats().health.backoff_cycles > 0);
        assert_eq!(m.remapped_lines(), 0, "transients must not remap");
    }

    #[test]
    fn single_flip_corrected_inline() {
        let mut m = mc();
        let addr = PageId::new(2).block_addr(0);
        m.write_block(addr, &line(0x33), false, Cycles::ZERO)
            .unwrap();
        m.inject_data_read_error(addr, 1);
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0x33));
        assert_eq!(m.stats().health.ecc_corrected.get(), 1);
        assert_eq!(m.stats().health.retries.get(), 0);
    }

    #[test]
    fn weak_line_remapped_and_data_survives() {
        let mut m = mc();
        let addr = PageId::new(3).block_addr(7);
        m.write_block(addr, &line(0xC4), false, Cycles::ZERO)
            .unwrap();
        m.force_line_failure(addr, 1);
        // The demand read is ECC-corrected, then the line is rescued to
        // a spare under a fresh IV at operation end.
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0xC4));
        assert_eq!(m.stats().health.remaps.get(), 1);
        assert_eq!(m.remapped_lines(), 1);
        // Demand read + rescue read were each corrected once; reads from
        // the (healthy) spare need no further correction.
        let corrected_after_remap = m.stats().health.ecc_corrected.get();
        let again = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(again.data, line(0xC4));
        assert_eq!(
            m.stats().health.ecc_corrected.get(),
            corrected_after_remap,
            "spare is clean"
        );
        // And writes/reads keep round-tripping through the spare.
        m.write_block(addr, &line(0xD1), false, Cycles::ZERO)
            .unwrap();
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(0xD1));
    }

    #[test]
    fn exhausted_pool_quarantines_loudly() {
        let mut m = MemoryController::new(ControllerConfig {
            spare_lines: 0,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let addr = PageId::new(1).block_addr(0);
        m.write_block(addr, &line(0xEE), false, Cycles::ZERO)
            .unwrap();
        m.force_line_failure(addr, 1);
        // Rescue read still works, but the remap fails: quarantine.
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0xEE));
        assert_eq!(m.stats().health.remap_failures.get(), 1);
        assert_eq!(m.quarantined_lines(), 1);
        assert!(m.is_line_quarantined(addr));
        match m.read_block(addr, Cycles::ZERO) {
            Err(Error::Quarantined { .. }) => {}
            other => panic!("expected Quarantined, got {other:?}"),
        }
    }

    #[test]
    fn full_line_write_revives_quarantined_line() {
        let mut m = MemoryController::new(ControllerConfig {
            spare_lines: 1,
            ..ControllerConfig::small_test()
        })
        .unwrap();
        let addr = PageId::new(2).block_addr(5);
        m.write_block(addr, &line(0x17), false, Cycles::ZERO)
            .unwrap();
        // 2 weak bits: permanently uncorrectable, straight to quarantine.
        m.force_line_failure(addr, 2);
        assert!(m.read_block(addr, Cycles::ZERO).is_err());
        assert_eq!(m.quarantined_lines(), 1);
        // A full-line write carries everything a spare needs.
        m.write_block(addr, &line(0x18), false, Cycles::ZERO)
            .unwrap();
        assert_eq!(m.quarantined_lines(), 0);
        assert_eq!(m.remapped_lines(), 1);
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(0x18));
    }

    #[test]
    fn shredded_line_remap_preserves_zero_fill() {
        let mut m = mc();
        let page = PageId::new(0);
        let addr = page.block_addr(0);
        m.write_block(addr, &line(0x77), false, Cycles::ZERO)
            .unwrap();
        m.shred_page(page, true).unwrap();
        m.force_line_failure(addr, 1);
        // The demand path never touches a shredded line's array slot, so
        // the scrubber is what finds the wear-out (cursor starts at 0).
        let healed = m.scrub_step(Cycles::ZERO).unwrap();
        assert!(healed);
        assert_eq!(m.stats().health.remaps.get(), 1);
        // Shredding semantics survive healing: still zero-filled, the
        // minor counter was NOT bumped by the remap.
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert!(r.zero_filled);
        assert_eq!(r.data, [0u8; LINE_SIZE]);
    }

    #[test]
    fn scrubber_runs_on_write_idle_cycles() {
        let mut m = MemoryController::new(ControllerConfig {
            scrub_interval: Some(4),
            ..ControllerConfig::small_test()
        })
        .unwrap();
        for i in 0..12u64 {
            m.write_block(
                PageId::new(1).block_addr((i % 8) as usize),
                &line(i as u8),
                false,
                Cycles::ZERO,
            )
            .unwrap();
        }
        assert_eq!(m.stats().health.scrub_reads.get(), 3);
    }

    // --------------------------------------------------------------
    // Scattered two-share backend.
    // --------------------------------------------------------------

    fn scattered() -> MemoryController {
        let cfg = crate::config::ControllerConfigBuilder::scattered()
            .data_capacity(1 << 20)
            .counter_cache_bytes(16 << 10)
            .build()
            .unwrap();
        MemoryController::new(cfg).unwrap()
    }

    #[test]
    fn scattered_write_then_read_roundtrip() {
        let mut m = scattered();
        let addr = PageId::new(1).block_addr(2);
        m.write_block(addr, &line(0x7E), false, Cycles::ZERO)
            .unwrap();
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0x7E));
        assert!(!r.zero_filled);
        assert_eq!(m.stats().prot.share_writes.get(), 1);
        assert_eq!(m.stats().prot.recombines.get(), 1);
    }

    #[test]
    fn scattered_fresh_page_reads_zero_filled() {
        let mut m = scattered();
        let r = m
            .read_block(PageId::new(5).block_addr(9), Cycles::ZERO)
            .unwrap();
        assert!(r.zero_filled);
        assert_eq!(r.data, [0u8; LINE_SIZE]);
        assert_eq!(m.stats().mem.reads.get(), 0, "array untouched");
    }

    #[test]
    fn scattered_neither_region_holds_plaintext() {
        let mut m = scattered();
        let addr = PageId::new(1).block_addr(0);
        m.write_block(addr, &line(0x11), false, Cycles::ZERO)
            .unwrap();
        let share_a = m.nvm().peek(addr);
        let share_b = m.nvm().peek(m.mask_addr(addr));
        assert_ne!(share_a, line(0x11), "plaintext leaked to data region");
        assert_ne!(share_b, line(0x11), "plaintext leaked to mask region");
        assert_eq!(
            ss_crypto::share::recombine_shares(&share_a, &share_b),
            line(0x11)
        );
    }

    #[test]
    fn scattered_shred_reads_zero_and_destroys_pairing() {
        let mut m = scattered();
        let page = PageId::new(2);
        for b in 0..4 {
            m.write_block(page.block_addr(b), &line(b as u8 + 1), false, Cycles::ZERO)
                .unwrap();
        }
        let writes_before = m.stats().mem.writes.get();
        m.shred_page(page, true).unwrap();
        // No *data-region* writes: the mask region absorbed the discard.
        assert_eq!(m.stats().mem.writes.get(), writes_before);
        assert_eq!(m.stats().prot.mask_discards.get(), 4);
        for b in 0..4 {
            let addr = page.block_addr(b);
            let r = m.read_block(addr, Cycles::ZERO).unwrap();
            assert!(r.zero_filled);
            assert_eq!(r.data, [0u8; LINE_SIZE]);
            // Even recombining the surviving regions yields noise now.
            let residue = ss_crypto::share::recombine_shares(
                &m.nvm().peek(addr),
                &m.nvm().peek(m.mask_addr(addr)),
            );
            assert_ne!(
                residue,
                line(b as u8 + 1),
                "shred left recombinable residue"
            );
        }
    }

    #[test]
    fn scattered_shred_survives_power_loss_and_recovery() {
        let mut m = scattered();
        let page = PageId::new(3);
        let addr = page.block_addr(0);
        m.write_block(addr, &line(0x55), false, Cycles::ZERO)
            .unwrap();
        m.shred_page(page, true).unwrap();
        m.power_loss().unwrap();
        let report = m.recover_mut().unwrap();
        assert!(report.root_verified);
        assert_eq!(report.shredded_pages, 1);
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert!(r.zero_filled);
        assert_eq!(r.data, [0u8; LINE_SIZE]);
    }

    #[test]
    fn scattered_shred_then_heal_uses_fresh_shares() {
        let mut m = scattered();
        let page = PageId::new(4);
        let addr = page.block_addr(0);
        m.write_block(addr, &line(0x66), false, Cycles::ZERO)
            .unwrap();
        m.shred_page(page, true).unwrap();
        // Rewrite after the shred, then degrade the backing slot: the
        // rescue must move a fresh share pair, not resurrect anything.
        m.write_block(addr, &line(0x77), false, Cycles::ZERO)
            .unwrap();
        let share_before = m.nvm().peek(addr);
        m.force_line_failure(addr, 1);
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert_eq!(r.data, line(0x77));
        assert_eq!(m.stats().health.remaps.get(), 1);
        assert_eq!(m.stats().prot.fresh_share_rescues.get(), 1);
        // Readable from the spare, and under a brand-new pad.
        assert_eq!(m.read_block(addr, Cycles::ZERO).unwrap().data, line(0x77));
        let rescued_slot = m.heal.redirect(addr);
        assert_ne!(m.nvm().peek(rescued_slot), share_before, "pad was reused");
    }

    #[test]
    fn scattered_rescue_of_dead_block_stays_dead() {
        let mut m = scattered();
        let page = PageId::new(6);
        let addr = page.block_addr(0);
        m.write_block(addr, &line(0x42), false, Cycles::ZERO)
            .unwrap();
        m.shred_page(page, true).unwrap();
        m.force_line_failure(addr, 1);
        // Scrub finds the worn slot; the dead block is retired without
        // resurrecting content.
        while m.heal.redirect(addr) == addr {
            if m.scrub_step(Cycles::ZERO).unwrap() {
                break;
            }
        }
        let r = m.read_block(addr, Cycles::ZERO).unwrap();
        assert!(r.zero_filled);
        assert_eq!(m.stats().prot.fresh_share_rescues.get(), 0);
    }

    #[test]
    fn scattered_liveness_tamper_detected() {
        let mut m = scattered();
        let page = PageId::new(1);
        m.write_block(page.block_addr(0), &line(1), false, Cycles::ZERO)
            .unwrap();
        m.flush_counters().unwrap();
        m.tamper_counter_line(page, line(0xAD));
        m.drop_counter_cache();
        let err = m.read_block(page.block_addr(0), Cycles::ZERO).unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation { .. }));
    }

    #[test]
    fn scattered_share_stream_is_deterministic() {
        let mk = || {
            let mut m = scattered();
            m.write_block(
                PageId::new(1).block_addr(0),
                &line(0x5A),
                false,
                Cycles::ZERO,
            )
            .unwrap();
            m.nvm().peek(PageId::new(1).block_addr(0))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn scattered_metrics_expose_prot_keys() {
        let mut m = scattered();
        m.write_block(PageId::new(0).block_addr(0), &line(1), false, Cycles::ZERO)
            .unwrap();
        let reg = m.metrics();
        let json = reg.to_json();
        assert!(json.contains("\"prot.share_writes\":1"), "{json}");
        assert!(json.contains("\"prot.metadata_lines\""), "{json}");
        // Counter mode must NOT grow the schema.
        let cm = mc().metrics().to_json();
        assert!(!cm.contains("prot."), "{cm}");
    }
}
