//! Memory-controller write queue with read priority.
//!
//! Real NVM controllers do not put writes on the bus as they arrive:
//! write-backs are buffered in an on-controller queue (inside the ADR
//! persistence domain) and drained in bursts when the queue passes a
//! high-water mark or the bus is idle, so that latency-critical *reads*
//! never wait behind a write burst. Reads that hit a queued write are
//! served by **forwarding** straight out of the queue.
//!
//! This matters for the paper's bandwidth argument (§6.1): with slow NVM
//! writes, zeroing bursts fill the write queue and force drains that
//! steal read bandwidth — unless the writes never exist, which is what
//! Silent Shredder achieves. The `ablation_write_queue` bench quantifies
//! the interaction.

use std::collections::VecDeque;

use ss_common::{BlockAddr, Counter, Error, Result, LINE_SIZE};

/// A 64-byte line.
type Line = [u8; LINE_SIZE];

/// Write-queue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteQueueConfig {
    /// Queue capacity in lines (a typical controller holds 32–128).
    pub capacity: usize,
    /// Drain down to this occupancy once the high-water mark is hit.
    pub drain_low: usize,
    /// Start draining when occupancy reaches this mark.
    pub drain_high: usize,
}

impl Default for WriteQueueConfig {
    fn default() -> Self {
        WriteQueueConfig {
            capacity: 64,
            drain_low: 16,
            drain_high: 48,
        }
    }
}

impl WriteQueueConfig {
    /// Validates the watermarks.
    pub fn is_valid(&self) -> bool {
        self.capacity > 0 && self.drain_low < self.drain_high && self.drain_high <= self.capacity
    }
}

/// Queue statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteQueueStats {
    /// Writes accepted into the queue.
    pub enqueued: Counter,
    /// Writes drained to the device.
    pub drained: Counter,
    /// Reads served by forwarding from the queue.
    pub forwards: Counter,
    /// Writes coalesced (a newer write to the same line replaced an
    /// older queued one before it reached the device).
    pub coalesced: Counter,
    /// Times the high-water mark forced a drain burst.
    pub high_water_drains: Counter,
}

/// The write queue. Draining is the caller's job (the controller owns
/// the channels and the device); the queue decides *what* to drain.
#[derive(Debug, Clone)]
pub struct WriteQueue {
    config: WriteQueueConfig,
    entries: VecDeque<(BlockAddr, Line, bool)>,
    stats: WriteQueueStats,
}

impl WriteQueue {
    /// Creates an empty queue.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the watermarks are invalid
    /// (`ControllerConfig::validate` checks the same predicate, so a
    /// controller-owned queue can never hit this; direct construction
    /// surfaces a typed error instead of a panic, per SEC-001).
    pub fn new(config: WriteQueueConfig) -> Result<Self> {
        if !config.is_valid() {
            return Err(Error::InvalidConfig {
                detail: format!(
                    "write-queue watermarks invalid: capacity={} drain_low={} drain_high={} \
                     (need capacity > 0 and drain_low < drain_high <= capacity)",
                    config.capacity, config.drain_low, config.drain_high
                ),
            });
        }
        Ok(WriteQueue {
            config,
            entries: VecDeque::new(),
            stats: WriteQueueStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &WriteQueueConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &WriteQueueStats {
        &self.stats
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues a write (coalescing onto an already-queued line).
    /// Returns `true` when the caller must drain to the low-water mark
    /// before accepting more traffic.
    pub fn push(&mut self, addr: BlockAddr, data: Line, zeroing: bool) -> bool {
        self.stats.enqueued.inc();
        if let Some(e) = self.entries.iter_mut().find(|(a, _, _)| *a == addr) {
            e.1 = data;
            e.2 |= zeroing;
            self.stats.coalesced.inc();
        } else {
            self.entries.push_back((addr, data, zeroing));
        }
        if self.entries.len() >= self.config.drain_high {
            self.stats.high_water_drains.inc();
            true
        } else {
            false
        }
    }

    /// Looks up a queued write for read forwarding.
    pub fn forward(&mut self, addr: BlockAddr) -> Option<Line> {
        let hit = self
            .entries
            .iter()
            .rev()
            .find(|(a, _, _)| *a == addr)
            .map(|(_, d, _)| *d);
        if hit.is_some() {
            self.stats.forwards.inc();
        }
        hit
    }

    /// Looks up a queued write without counting a forward (test/peek
    /// paths).
    pub fn peek(&self, addr: BlockAddr) -> Option<Line> {
        self.entries
            .iter()
            .rev()
            .find(|(a, _, _)| *a == addr)
            .map(|(_, d, _)| *d)
    }

    /// Pops the oldest queued write for draining to the device.
    pub fn pop_for_drain(&mut self) -> Option<(BlockAddr, Line, bool)> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.stats.drained.inc();
        }
        e
    }

    /// How many writes a high-water drain burst should retire.
    pub fn burst_len(&self) -> usize {
        self.entries.len().saturating_sub(self.config.drain_low)
    }

    /// Drops every queued write without draining it. Models an ADR power
    /// loss, where the queue sits *outside* the persistence domain: the
    /// buffered lines simply vanish. Returns how many were dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.entries.len();
        self.entries.clear();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> BlockAddr {
        BlockAddr::new(n * 64)
    }

    fn queue() -> WriteQueue {
        WriteQueue::new(WriteQueueConfig {
            capacity: 8,
            drain_low: 2,
            drain_high: 6,
        })
        .unwrap()
    }

    #[test]
    fn push_until_high_water() {
        let mut q = queue();
        for i in 0..5 {
            assert!(
                !q.push(addr(i), [i as u8; 64], false),
                "drained early at {i}"
            );
        }
        assert!(q.push(addr(5), [5; 64], false), "high water not signalled");
        assert_eq!(q.burst_len(), 4); // 6 entries, drain to 2
    }

    #[test]
    fn forwarding_returns_newest_data() {
        let mut q = queue();
        q.push(addr(1), [1; 64], false);
        q.push(addr(1), [2; 64], false); // coalesces
        assert_eq!(q.forward(addr(1)), Some([2; 64]));
        assert_eq!(q.forward(addr(9)), None);
        assert_eq!(q.stats().coalesced.get(), 1);
        assert_eq!(q.stats().forwards.get(), 1);
        // Coalescing kept one entry.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_is_fifo() {
        let mut q = queue();
        q.push(addr(1), [1; 64], false);
        q.push(addr(2), [2; 64], true);
        let (a, d, z) = q.pop_for_drain().unwrap();
        assert_eq!((a, d[0], z), (addr(1), 1, false));
        let (a, _, z) = q.pop_for_drain().unwrap();
        assert_eq!((a, z), (addr(2), true));
        assert!(q.pop_for_drain().is_none());
        assert_eq!(q.stats().drained.get(), 2);
    }

    #[test]
    fn invalid_watermarks_are_a_typed_error() {
        let err = WriteQueue::new(WriteQueueConfig {
            capacity: 4,
            drain_low: 4,
            drain_high: 4,
        })
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }), "{err:?}");
        // Zero capacity is rejected too.
        assert!(WriteQueue::new(WriteQueueConfig {
            capacity: 0,
            drain_low: 0,
            drain_high: 0,
        })
        .is_err());
    }
}
