//! Persist-step torn-write model and the NVM-resident ordering journal.
//!
//! Every durable line write a [`crate::MemoryController`] issues inside
//! a multi-step persist sequence (write-queue drain entries, counter
//! write + Merkle leaf update, spare-pool remap under a fresh IV,
//! batched shred drains, scrubber repairs) is a numbered
//! **persist step**. Under [`crate::PersistDomain::Adr`] a harness-side
//! crash injector can arm a [`CrashCut`] that stops the machine at any
//! step — before the step's line write, or mid-write with only a torn
//! 8-byte-aligned prefix of the 64 B line persisted. Under
//! [`crate::PersistDomain::Eadr`] the cut never fires: stored energy
//! completes the in-flight sequence, which is exactly the historical
//! behaviour.
//!
//! To make an arbitrary cut recoverable, ADR mode maintains an
//! **ordering journal** in a dedicated NVM region after the spare pool:
//!
//! ```text
//! [data][gap][counters][spares][journal: header + up to 96 entries]
//! ```
//!
//! Each top-level operation that persists anything opens a journal
//! sequence (header line, lazily on the first entry), appends one entry
//! per line it is about to write — the **pre-image** for undo
//! sequences, the **post-image** for redo sequences (pure metadata
//! flushes whose data is already durable) — and closes the header when
//! the operation completes. Journal writes themselves model a
//! battery-latched path: they are not cuttable and not torn.
//!
//! On reboot, [`crate::MemoryController::recover_mut`] finds an open
//! sequence, applies redo entries forward and undo entries in reverse
//! (restoring Merkle leaves for counter lines and rolling back
//! spare-pool allocations), closes the journal, re-verifies every
//! Merkle leaf against the persisted counter region, and re-counts the
//! shredded-page population — re-establishing the shred-reads-zero
//! invariant before the first demand access.

use ss_common::{BlockAddr, PageId, LINE_SIZE};
use ss_crypto::Line;

/// Maximum journal entries one sequence may hold. The worst real
/// sequence is a minor-overflow re-encryption (64 data lines + counter
/// pre-image + remap bookkeeping); 96 leaves headroom.
pub const JOURNAL_MAX_ENTRIES: usize = 96;

/// Lines occupied by the journal region: one header plus two lines
/// (entry header + payload) per entry.
pub const JOURNAL_LINES: u64 = 1 + 2 * JOURNAL_MAX_ENTRIES as u64;

/// Journal header magic ("SSJRNL01" as little-endian bytes).
const HEADER_MAGIC: u64 = 0x3130_4C4E_524A_5353;
/// Journal entry magic ("SSJENT01").
const ENTRY_MAGIC: u64 = 0x3130_544E_454A_5353;

const STATE_OPEN: u8 = 1;
const STATE_CLOSED: u8 = 2;

/// Which multi-step persist sequence a journal header belongs to.
/// Stored as a stable u8 tag; purely diagnostic — recovery semantics
/// are carried by the per-entry [`EntryKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqTag {
    /// A demand write (`write_block`) or in-place page zeroing.
    DemandWrite,
    /// A shred command (counter update, possibly an overflow
    /// re-encryption sweep).
    Shred,
    /// A spare-pool remap (demand-read heal or scrubber repair).
    Remap,
    /// A background scrubber step.
    Scrub,
    /// One write-queue drain entry at top level (fence / power-down).
    DrainEntry,
    /// An explicit dirty-counter flush (pure metadata roll-forward).
    CounterFlush,
}

impl SeqTag {
    /// Stable on-NVM encoding.
    pub fn raw(self) -> u8 {
        match self {
            SeqTag::DemandWrite => 1,
            SeqTag::Shred => 2,
            SeqTag::Remap => 3,
            SeqTag::Scrub => 4,
            SeqTag::DrainEntry => 5,
            SeqTag::CounterFlush => 6,
        }
    }

    /// Decodes a stored tag.
    pub fn from_raw(raw: u8) -> Option<SeqTag> {
        Some(match raw {
            1 => SeqTag::DemandWrite,
            2 => SeqTag::Shred,
            3 => SeqTag::Remap,
            4 => SeqTag::Scrub,
            5 => SeqTag::DrainEntry,
            6 => SeqTag::CounterFlush,
            _ => return None,
        })
    }

    /// Human-readable label (stable; used in reports).
    pub fn label(self) -> &'static str {
        match self {
            SeqTag::DemandWrite => "demand-write",
            SeqTag::Shred => "shred",
            SeqTag::Remap => "remap",
            SeqTag::Scrub => "scrub",
            SeqTag::DrainEntry => "drain-entry",
            SeqTag::CounterFlush => "counter-flush",
        }
    }

    /// Whether this sequence journals post-images (roll forward on
    /// recovery) instead of pre-images (roll back). Only the pure
    /// metadata flush rolls forward: its data lines are already durable,
    /// so re-persisting the newest counter value is always consistent.
    pub fn is_redo(self) -> bool {
        matches!(self, SeqTag::CounterFlush)
    }
}

/// What one journal entry undoes or redoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Restore the payload (pre-image) to a data/spare line.
    DataUndo,
    /// Restore the payload (pre-image) to a counter line and roll the
    /// Merkle leaf of `page` back to it.
    CounterUndo,
    /// Rewrite the payload (post-image) to a counter line and roll the
    /// Merkle leaf of `page` forward to it.
    CounterRedo,
    /// Roll back a spare-pool allocation: remove the `target → aux`
    /// redirect installed mid-sequence (re-quarantining the target when
    /// the allocation revived a quarantined line). Payload unused.
    RemapAlloc,
}

impl EntryKind {
    fn raw(self) -> u8 {
        match self {
            EntryKind::DataUndo => 1,
            EntryKind::CounterUndo => 2,
            EntryKind::CounterRedo => 3,
            EntryKind::RemapAlloc => 4,
        }
    }

    fn from_raw(raw: u8) -> Option<EntryKind> {
        Some(match raw {
            1 => EntryKind::DataUndo,
            2 => EntryKind::CounterUndo,
            3 => EntryKind::CounterRedo,
            4 => EntryKind::RemapAlloc,
            _ => return None,
        })
    }
}

/// One decoded journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// What recovery does with it.
    pub kind: EntryKind,
    /// The line the entry protects (device address), or the failed
    /// original for [`EntryKind::RemapAlloc`].
    pub target: BlockAddr,
    /// Owning page for counter entries; the allocated spare slot for
    /// [`EntryKind::RemapAlloc`]; 0 otherwise.
    pub aux: u64,
    /// Whether a revived quarantined line must be re-quarantined on
    /// undo (only meaningful for [`EntryKind::RemapAlloc`]).
    pub was_quarantined: bool,
    /// Pre- or post-image (unused for [`EntryKind::RemapAlloc`]).
    pub payload: Line,
}

/// A decoded open journal sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenSequence {
    /// Diagnostic tag of the interrupted operation.
    pub tag: Option<SeqTag>,
    /// Sequence number (monotonic per controller lifetime).
    pub seq_no: u64,
    /// Entries in append order.
    pub entries: Vec<JournalEntry>,
}

/// An armed crash cut: stop the machine at persist step `at_step`
/// (1-based, counted over the controller's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashCut {
    /// The step at which the cut lands.
    pub at_step: u64,
    /// Bytes of the in-flight 64 B line write that persist before the
    /// cut, rounded down to the 8-byte store granularity. 0 models a cut
    /// just before the write; 64 would be a completed write (use a later
    /// step instead).
    pub torn_bytes: usize,
}

/// Volatile persist-path state of one controller: the step counter, the
/// armed cut, and the mirror of the currently open journal sequence.
#[derive(Debug, Default)]
pub struct PersistState {
    /// Lifetime persist-step counter (also ticks under eADR so the
    /// census is domain-independent).
    pub steps: u64,
    /// Armed crash cut, if any (honoured only under ADR).
    pub armed: Option<CrashCut>,
    /// Whether the armed cut has fired: the machine is "off" and every
    /// further persist attempt fails until the power cycle.
    pub cut_fired: bool,
    /// Tag of the open top-level sequence (None between operations).
    pub tag: Option<SeqTag>,
    /// Nesting depth of `seq_begin` calls (inner sequences join the
    /// outermost).
    pub depth: u32,
    /// Whether the open sequence's header has been written to NVM.
    pub header_written: bool,
    /// Next sequence number to use.
    pub next_seq: u64,
    /// Targets journaled in the open sequence (dedupe: first pre-image
    /// wins).
    pub journaled: Vec<u64>,
    /// Entries appended to the open sequence (mirror of NVM state).
    pub entry_count: usize,
    /// Set while flushing an evicted dirty victim: its data lines are
    /// already durable, so the counter write journals a post-image
    /// (roll forward) instead of a pre-image.
    pub victim_flush: bool,
}

impl PersistState {
    /// Fresh state with sequence numbering starting at 1.
    pub fn new() -> Self {
        PersistState {
            next_seq: 1,
            ..PersistState::default()
        }
    }
}

/// What [`crate::MemoryController::recover_mut`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether an open (interrupted) journal sequence was found.
    pub journal_open: bool,
    /// Diagnostic tag of the interrupted sequence (raw encoding; 0 when
    /// none).
    pub interrupted_tag: u8,
    /// Pre-images restored (lines rolled back).
    pub undone: u64,
    /// Post-images re-applied (lines rolled forward).
    pub redone: u64,
    /// Spare-pool allocations rolled back.
    pub remaps_rolled_back: u64,
    /// Whether every Merkle leaf re-verified against the persisted
    /// counter region (always true when integrity is disabled).
    pub root_verified: bool,
    /// Pages whose persisted counters are fully shredded with a non-zero
    /// major (i.e. shredded by command, zero-filling on read).
    pub shredded_pages: u64,
}

impl RecoveryReport {
    /// Whether recovery changed any persisted state.
    pub fn repaired(&self) -> bool {
        self.undone > 0 || self.redone > 0 || self.remaps_rolled_back > 0
    }
}

fn put_u64(line: &mut Line, at: usize, v: u64) {
    line[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(line: &Line, at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&line[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Encodes a journal header line.
pub fn encode_header(open: bool, tag: u8, seq_no: u64) -> Line {
    let mut line = [0u8; LINE_SIZE];
    put_u64(&mut line, 0, HEADER_MAGIC);
    line[8] = if open { STATE_OPEN } else { STATE_CLOSED };
    line[9] = tag;
    put_u64(&mut line, 16, seq_no);
    line
}

/// Decodes a journal header: `Some((open, tag, seq_no))` when the magic
/// matches.
pub fn decode_header(line: &Line) -> Option<(bool, u8, u64)> {
    if get_u64(line, 0) != HEADER_MAGIC {
        return None;
    }
    let open = match line[8] {
        STATE_OPEN => true,
        STATE_CLOSED => false,
        _ => return None,
    };
    Some((open, line[9], get_u64(line, 16)))
}

/// Encodes a journal entry header line.
pub fn encode_entry(entry: &JournalEntry, seq_no: u64) -> Line {
    let mut line = [0u8; LINE_SIZE];
    put_u64(&mut line, 0, ENTRY_MAGIC);
    line[8] = entry.kind.raw();
    line[9] = u8::from(entry.was_quarantined);
    put_u64(&mut line, 16, entry.target.raw());
    put_u64(&mut line, 24, entry.aux);
    put_u64(&mut line, 32, seq_no);
    line
}

/// Decodes an entry header belonging to sequence `seq_no`; the payload
/// is supplied separately by the caller.
pub fn decode_entry(line: &Line, seq_no: u64, payload: Line) -> Option<JournalEntry> {
    if get_u64(line, 0) != ENTRY_MAGIC || get_u64(line, 32) != seq_no {
        return None;
    }
    Some(JournalEntry {
        kind: EntryKind::from_raw(line[8])?,
        target: BlockAddr::new(get_u64(line, 16)),
        aux: get_u64(line, 24),
        was_quarantined: line[9] != 0,
        payload,
    })
}

/// Owning page of a counter entry's `aux` field.
pub fn entry_page(entry: &JournalEntry) -> PageId {
    PageId::new(entry.aux)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let line = encode_header(true, SeqTag::Remap.raw(), 42);
        assert_eq!(decode_header(&line), Some((true, 3, 42)));
        let closed = encode_header(false, 0, 7);
        assert_eq!(decode_header(&closed), Some((false, 0, 7)));
        assert_eq!(decode_header(&[0u8; LINE_SIZE]), None);
    }

    #[test]
    fn entry_roundtrip() {
        let e = JournalEntry {
            kind: EntryKind::CounterUndo,
            target: BlockAddr::new(0x1_0040),
            aux: 9,
            was_quarantined: false,
            payload: [0xAB; LINE_SIZE],
        };
        let line = encode_entry(&e, 5);
        assert_eq!(decode_entry(&line, 5, [0xAB; LINE_SIZE]), Some(e));
        // A stale entry from an earlier sequence does not decode.
        assert_eq!(decode_entry(&line, 6, [0xAB; LINE_SIZE]), None);
    }

    #[test]
    fn tags_roundtrip() {
        for tag in [
            SeqTag::DemandWrite,
            SeqTag::Shred,
            SeqTag::Remap,
            SeqTag::Scrub,
            SeqTag::DrainEntry,
            SeqTag::CounterFlush,
        ] {
            assert_eq!(SeqTag::from_raw(tag.raw()), Some(tag));
            assert!(!tag.label().is_empty());
        }
        assert_eq!(SeqTag::from_raw(0), None);
        assert!(SeqTag::CounterFlush.is_redo());
        assert!(!SeqTag::Shred.is_redo());
    }
}
