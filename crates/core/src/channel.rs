//! Memory-channel scheduling (bandwidth contention).
//!
//! Table 1 gives two channels of 12.8 GB/s. The scheduler tracks when
//! each channel becomes free; an access issued at time `now` starts at
//! `max(now, earliest_free)` and occupies its channel for the array
//! latency plus the line transfer time. The queueing delay this produces
//! is how eliminated zeroing writes translate into faster reads and
//! higher IPC in the simulator.

use ss_common::Cycles;
use ss_nvm::NvmTiming;

/// Tracks per-channel busy-until times in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSched {
    busy_until: Vec<u64>,
    transfer_cycles: u64,
}

impl ChannelSched {
    /// Creates a scheduler from the NVM timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `timing.channels == 0`.
    pub fn new(timing: &NvmTiming) -> Self {
        assert!(timing.channels > 0, "need at least one channel");
        // Integer fixed-point all the way down: picosecond transfer
        // time, ceil-converted to cycles (DET-004 — no f64 rounding in
        // cycle accounting).
        ChannelSched {
            busy_until: vec![0; timing.channels as usize],
            transfer_cycles: timing.line_transfer_ps().to_cycles_ceil().raw(),
        }
    }

    /// Schedules an access of array latency `service` issued at `now`.
    /// Returns the total latency as seen by the requester (queueing +
    /// service + transfer).
    ///
    /// The channel is occupied only for the *transfer* time: NVM ranks
    /// have many banks, so cell latency pipelines across consecutive
    /// accesses and sustained throughput is bandwidth-limited, while each
    /// individual requester still waits out the full array latency.
    pub fn schedule(&mut self, now: Cycles, service: Cycles) -> Cycles {
        // Fold instead of min_by_key().expect(): the constructor
        // guarantees at least one channel, and the fold needs no panic
        // path even if that ever changed (SEC-001).
        let (idx, free_at) =
            self.busy_until
                .iter()
                .enumerate()
                .fold(
                    (0usize, u64::MAX),
                    |best, (i, &t)| {
                        if t < best.1 {
                            (i, t)
                        } else {
                            best
                        }
                    },
                );
        let free_at = if free_at == u64::MAX { 0 } else { free_at };
        let start = now.raw().max(free_at);
        self.busy_until[idx] = start + self.transfer_cycles;
        Cycles::new(start - now.raw() + service.raw() + self.transfer_cycles)
    }

    /// The earliest time by which every channel is idle (used by fence
    /// semantics: `sfence`/`pcommit` wait for posted writes).
    pub fn all_idle_at(&self) -> Cycles {
        Cycles::new(self.busy_until.iter().copied().max().unwrap_or(0))
    }

    /// Resets the schedule (new experiment phase).
    pub fn reset(&mut self) {
        for t in &mut self.busy_until {
            *t = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ChannelSched {
        ChannelSched::new(&NvmTiming::default())
    }

    #[test]
    fn uncontended_access_costs_service_plus_transfer() {
        let mut s = sched();
        let lat = s.schedule(Cycles::new(1000), Cycles::new(150));
        // 150 service + 10 transfer cycles (64B / 12.8GBps = 5 ns = 10 cyc)
        assert_eq!(lat, Cycles::new(160));
    }

    /// Regression pin for the Table 1 configuration: the integer
    /// picosecond path must produce exactly the 10 transfer cycles the
    /// old `f64` `ceil()` produced (64 B / 12.8 GB/s = 5000 ps = 10 cyc
    /// at 2 GHz), so scheduler-visible latencies are unchanged.
    #[test]
    fn table1_transfer_cycles_pinned() {
        let s = ChannelSched::new(&NvmTiming::default());
        assert_eq!(s.transfer_cycles, 10);
        // A rate that does not divide evenly still rounds up, never down.
        let odd = ChannelSched::new(&NvmTiming {
            channel_mbps: 10_000, // 6400 ps → 12.8 cycles → 13
            ..NvmTiming::default()
        });
        assert_eq!(odd.transfer_cycles, 13);
    }

    #[test]
    fn two_channels_absorb_two_parallel_accesses() {
        let mut s = sched();
        let l1 = s.schedule(Cycles::ZERO, Cycles::new(150));
        let l2 = s.schedule(Cycles::ZERO, Cycles::new(150));
        assert_eq!(l1, l2, "second access uses the other channel");
    }

    #[test]
    fn third_access_queues() {
        let mut s = sched();
        s.schedule(Cycles::ZERO, Cycles::new(150));
        s.schedule(Cycles::ZERO, Cycles::new(150));
        let l3 = s.schedule(Cycles::ZERO, Cycles::new(150));
        assert!(l3 > Cycles::new(160), "third access waited: {l3}");
    }

    #[test]
    fn idle_time_passes_without_queueing() {
        let mut s = sched();
        s.schedule(Cycles::ZERO, Cycles::new(150));
        // Much later, the channel is free again.
        let lat = s.schedule(Cycles::new(10_000), Cycles::new(150));
        assert_eq!(lat, Cycles::new(160));
    }

    #[test]
    fn fence_sees_latest_completion() {
        let mut s = sched();
        assert_eq!(s.all_idle_at(), Cycles::ZERO);
        s.schedule(Cycles::new(100), Cycles::new(300));
        // Occupancy is transfer-limited: 100 + 10 transfer cycles.
        assert_eq!(s.all_idle_at(), Cycles::new(110));
        s.reset();
        assert_eq!(s.all_idle_at(), Cycles::ZERO);
    }

    #[test]
    fn sustained_writes_are_bandwidth_limited() {
        // 64 back-to-back writes over 2 channels drain in ~32 transfer
        // slots, not 32 full write latencies (banks pipeline).
        let mut s = sched();
        for _ in 0..64 {
            s.schedule(Cycles::ZERO, Cycles::new(300));
        }
        let drain = s.all_idle_at();
        assert_eq!(drain, Cycles::new(320));
    }
}
