//! The controller's memory-mapped I/O surface.
//!
//! The kernel communicates a shred to the hardware by writing the page's
//! physical address to a memory-mapped register (§4.3 step 1, §5). §7.1
//! requires the register to be kernel-only: a user-mode write raises an
//! exception.

use ss_common::PhysAddr;

/// Physical address of the shred command register. Placed in a high MMIO
/// window that never overlaps data memory.
pub const SHRED_REG: PhysAddr = PhysAddr::new(0xFFFF_FF00_0000_0000);

/// Decoded MMIO operations the controller understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioOp {
    /// Shred the page containing the written physical address.
    Shred(PhysAddr),
}

/// Decodes a write of `value` to MMIO address `reg`, if it targets a
/// known register.
pub fn decode(reg: PhysAddr, value: u64) -> Option<MmioOp> {
    if reg == SHRED_REG {
        Some(MmioOp::Shred(PhysAddr::new(value)))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_shred_register() {
        match decode(SHRED_REG, 0x4000) {
            Some(MmioOp::Shred(pa)) => assert_eq!(pa, PhysAddr::new(0x4000)),
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn unknown_register_ignored() {
        assert_eq!(decode(PhysAddr::new(0x1234), 7), None);
    }
}
