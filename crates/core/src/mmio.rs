//! The controller's memory-mapped I/O surface.
//!
//! The kernel communicates a shred to the hardware by writing the page's
//! physical address to a memory-mapped register (§4.3 step 1, §5). §7.1
//! requires the register to be kernel-only: a user-mode write raises an
//! exception.
//!
//! Decoding and execution are split: [`decode`] classifies a raw write
//! into a typed [`MmioOp`] or a typed [`MmioError`] (unknown register vs
//! malformed value), and [`MmioOp::apply`] is the single execution path
//! through which privilege checking flows — callers hand it the writer's
//! mode instead of re-implementing per-register checks.

use ss_common::{Cycles, Error, PhysAddr, Result, PAGE_SIZE};

use crate::controller::MemoryController;

/// Physical address of the shred command register. Placed in a high MMIO
/// window that never overlaps data memory.
pub const SHRED_REG: PhysAddr = PhysAddr::new(0xFFFF_FF00_0000_0000);

/// Enqueue register of the batched shred pipeline: writing a page-aligned
/// physical address appends it to the controller's shred command queue
/// instead of shredding synchronously. The kernel can post thousands of
/// pages (a whole VM teardown) back to back, then trigger one drain.
pub const SHRED_ENQ_REG: PhysAddr = PhysAddr::new(0xFFFF_FF00_0000_0008);

/// Doorbell register of the batched shred pipeline: any write drains the
/// queued shreds in one batch with duplicates coalesced per page.
pub const SHRED_DRAIN_REG: PhysAddr = PhysAddr::new(0xFFFF_FF00_0000_0010);

/// Decoded MMIO operations the controller understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioOp {
    /// Shred the page containing the written physical address.
    Shred(PhysAddr),
    /// Append the page containing the address to the shred queue.
    ShredEnqueue(PhysAddr),
    /// Drain the shred queue as one coalesced batch.
    ShredDrain,
}

impl MmioOp {
    /// Executes the operation on `mc`. This is the single path through
    /// which the kernel-mode requirement is enforced for every decoded
    /// register: a user-mode writer is denied (and counted) by the
    /// operation's executor, never by ad-hoc caller-side checks.
    ///
    /// # Errors
    ///
    /// [`Error::PrivilegeViolation`] for user-mode writers, plus the
    /// executed operation's own errors.
    pub fn apply(
        self,
        mc: &mut MemoryController,
        kernel_mode: bool,
        now: Cycles,
    ) -> Result<Cycles> {
        match self {
            MmioOp::Shred(pa) => mc.shred_page_at(pa.page(), kernel_mode, now),
            // A plain (unsharded) controller has no command queue: it
            // models the degenerate depth-0 pipeline where an enqueue
            // completes the shred synchronously and the doorbell finds
            // nothing left to drain. `ShardedController::mmio_write`
            // intercepts both ops before they reach this fallback.
            MmioOp::ShredEnqueue(pa) => mc.shred_page_at(pa.page(), kernel_mode, now),
            MmioOp::ShredDrain => {
                if kernel_mode {
                    Ok(Cycles::new(1))
                } else {
                    mc.note_shred_denied();
                    Err(Error::PrivilegeViolation {
                        addr: SHRED_DRAIN_REG,
                    })
                }
            }
        }
    }
}

/// Why a raw MMIO write failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioError {
    /// The address does not name any controller register. Hardware
    /// ignores such writes (they complete as a plain bus write).
    UnknownRegister {
        /// The unrecognised address.
        reg: PhysAddr,
    },
    /// The address names a register, but the written value is one the
    /// register cannot accept — a software bug worth surfacing loudly
    /// rather than silently mis-shredding.
    MalformedValue {
        /// The register that rejected the value.
        reg: PhysAddr,
        /// The rejected value.
        value: u64,
        /// What was wrong with it.
        detail: &'static str,
    },
}

impl MmioError {
    /// Converts the malformed-value case into the workspace error type.
    pub fn into_error(self) -> Error {
        match self {
            MmioError::UnknownRegister { reg } => Error::MalformedMmio {
                reg,
                detail: "write to unknown MMIO register".to_string(),
            },
            MmioError::MalformedValue { reg, detail, .. } => Error::MalformedMmio {
                reg,
                detail: detail.to_string(),
            },
        }
    }
}

/// Decodes a write of `value` to MMIO address `reg`.
///
/// # Errors
///
/// [`MmioError::UnknownRegister`] when `reg` names no register;
/// [`MmioError::MalformedValue`] when it does but `value` is invalid
/// (the shred register requires a page-aligned physical address).
pub fn decode(reg: PhysAddr, value: u64) -> std::result::Result<MmioOp, MmioError> {
    if reg == SHRED_REG || reg == SHRED_ENQ_REG {
        if !value.is_multiple_of(PAGE_SIZE as u64) {
            return Err(MmioError::MalformedValue {
                reg,
                value,
                detail: "shred address must be page aligned",
            });
        }
        let pa = PhysAddr::new(value);
        if reg == SHRED_REG {
            Ok(MmioOp::Shred(pa))
        } else {
            Ok(MmioOp::ShredEnqueue(pa))
        }
    } else if reg == SHRED_DRAIN_REG {
        // The doorbell ignores the written value, as hardware doorbells
        // do.
        Ok(MmioOp::ShredDrain)
    } else {
        Err(MmioError::UnknownRegister { reg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_shred_register() {
        match decode(SHRED_REG, 0x4000) {
            Ok(MmioOp::Shred(pa)) => assert_eq!(pa, PhysAddr::new(0x4000)),
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn unknown_register_distinguished() {
        let reg = PhysAddr::new(0x1234);
        assert_eq!(decode(reg, 7), Err(MmioError::UnknownRegister { reg }));
    }

    #[test]
    fn decodes_queue_registers() {
        match decode(SHRED_ENQ_REG, 0x8000) {
            Ok(MmioOp::ShredEnqueue(pa)) => assert_eq!(pa, PhysAddr::new(0x8000)),
            other => panic!("unexpected decode: {other:?}"),
        }
        // Enqueue demands alignment just like the synchronous register.
        assert!(matches!(
            decode(SHRED_ENQ_REG, 0x8001),
            Err(MmioError::MalformedValue { .. })
        ));
        // The drain doorbell accepts any value.
        assert_eq!(decode(SHRED_DRAIN_REG, 0), Ok(MmioOp::ShredDrain));
        assert_eq!(decode(SHRED_DRAIN_REG, 0xdead_beef), Ok(MmioOp::ShredDrain));
    }

    #[test]
    fn unaligned_shred_value_is_malformed() {
        match decode(SHRED_REG, 0x4001) {
            Err(e @ MmioError::MalformedValue { value: 0x4001, .. }) => {
                assert!(matches!(e.into_error(), Error::MalformedMmio { .. }));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }
}
