//! Per-page encryption-counter blocks.
//!
//! One 64 B counter block per 4 KiB page, exactly as in Yan et al. \[40\]
//! (§2.2): a 64-bit major counter co-located with 64 seven-bit minor
//! counters. The block serialises to 64 bytes (8 for the major, 56 for
//! the packed minors) so it occupies one NVM line and one counter-cache
//! entry.

use ss_common::{BLOCKS_PER_PAGE, LINE_SIZE};
use ss_crypto::iv::{Iv, MINOR_FIRST, MINOR_MAX, MINOR_SHREDDED};

use crate::config::ShredStrategy;

/// A page's encryption counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBlock {
    /// The per-page major counter.
    pub major: u64,
    /// The per-block minor counters (7 significant bits each).
    pub minors: [u8; BLOCKS_PER_PAGE],
}

impl Default for CounterBlock {
    /// A fresh page starts shredded: major 0, all minors at the reserved
    /// zero value, so the very first read of an untouched page zero-fills.
    fn default() -> Self {
        CounterBlock {
            major: 0,
            minors: [MINOR_SHREDDED; BLOCKS_PER_PAGE],
        }
    }
}

/// What a write-path counter bump produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BumpOutcome {
    /// Minor counter advanced normally.
    Advanced,
    /// Minor counter overflowed: the major was bumped, every live minor
    /// reset, and the whole page must be re-encrypted.
    Overflowed,
}

impl CounterBlock {
    /// Builds the IV for `block` of the page with this counter state.
    ///
    /// # Panics
    ///
    /// Panics if `block >= 64`.
    pub fn iv(&self, page_id: u64, block: usize) -> Iv {
        Iv::new(page_id, block as u8, self.major, self.minors[block])
    }

    /// Whether `block` is in the shredded (reads-as-zero) state.
    pub fn is_shredded(&self, block: usize) -> bool {
        self.minors[block] == MINOR_SHREDDED
    }

    /// Whether every block of the page is shredded.
    pub fn fully_shredded(&self) -> bool {
        self.minors.iter().all(|&m| m == MINOR_SHREDDED)
    }

    /// Advances `block`'s minor counter for a write-back, implementing the
    /// overflow rule of §4.2: minors run 1..=127; on overflow the major is
    /// incremented and all live minors reset to 1 (shredded blocks keep
    /// their reserved 0 and remain zero-filled).
    pub fn bump_for_write(&mut self, block: usize) -> BumpOutcome {
        let m = self.minors[block];
        if m < MINOR_MAX {
            // Covers both the shredded state (0 → 1) and normal advance.
            self.minors[block] = m + 1;
            BumpOutcome::Advanced
        } else {
            self.major = self.major.wrapping_add(1);
            for minor in &mut self.minors {
                if *minor != MINOR_SHREDDED {
                    *minor = MINOR_FIRST;
                }
            }
            BumpOutcome::Overflowed
        }
    }

    /// Whether back-to-back shreds of the same page may be coalesced
    /// into one (the batched shred queue dedupes per drain window).
    ///
    /// For the major-bump strategies the observable state after N
    /// consecutive shreds with no intervening writes equals the state
    /// after one — any single major bump already invalidates every IV
    /// and (for option 3) arms zero-fill — so dropping duplicates is
    /// free. Option 1 spends a minor increment per shred, so coalescing
    /// would change overflow/re-encryption timing and is not allowed.
    pub fn shred_coalesces(strategy: ShredStrategy) -> bool {
        !matches!(strategy, ShredStrategy::MinorIncrementAll)
    }

    /// Applies a shred under the given strategy (§4.2's three options).
    /// Returns `true` when the strategy forces a page re-encryption
    /// (minor-increment overflow under option 1).
    pub fn shred(&mut self, strategy: ShredStrategy) -> bool {
        match strategy {
            ShredStrategy::MajorBumpResetMinors => {
                self.major = self.major.wrapping_add(1);
                self.minors = [MINOR_SHREDDED; BLOCKS_PER_PAGE];
                false
            }
            ShredStrategy::MajorBumpOnly => {
                self.major = self.major.wrapping_add(1);
                false
            }
            ShredStrategy::MinorIncrementAll => {
                let mut overflowed = false;
                for minor in &mut self.minors {
                    if *minor >= MINOR_MAX {
                        overflowed = true;
                    } else {
                        *minor += 1;
                    }
                }
                if overflowed {
                    self.major = self.major.wrapping_add(1);
                    for minor in &mut self.minors {
                        *minor = MINOR_FIRST;
                    }
                }
                overflowed
            }
        }
    }

    /// Serialises to one 64 B NVM line: major (8 bytes, LE) followed by
    /// the 64 minors packed 7 bits each (56 bytes).
    pub fn to_line(&self) -> [u8; LINE_SIZE] {
        let mut out = [0u8; LINE_SIZE];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        let mut bit = 0usize;
        for &m in &self.minors {
            let byte = 8 + bit / 8;
            let off = bit % 8;
            out[byte] |= m << off;
            if off > 1 {
                out[byte + 1] |= m >> (8 - off);
            }
            bit += 7;
        }
        out
    }

    /// Deserialises from a 64 B NVM line.
    pub fn from_line(line: &[u8; LINE_SIZE]) -> Self {
        let mut major_bytes = [0u8; 8];
        major_bytes.copy_from_slice(&line[..8]);
        let major = u64::from_le_bytes(major_bytes);
        let mut minors = [0u8; BLOCKS_PER_PAGE];
        let mut bit = 0usize;
        for m in &mut minors {
            let byte = 8 + bit / 8;
            let off = bit % 8;
            let mut v = line[byte] >> off;
            if off > 1 {
                v |= line[byte + 1] << (8 - off);
            }
            *m = v & MINOR_MAX;
            bit += 7;
        }
        CounterBlock { major, minors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_shredded() {
        let c = CounterBlock::default();
        assert!(c.fully_shredded());
        assert!(c.is_shredded(0));
        assert_eq!(c.major, 0);
    }

    #[test]
    fn bump_leaves_shredded_state() {
        let mut c = CounterBlock::default();
        assert_eq!(c.bump_for_write(3), BumpOutcome::Advanced);
        assert_eq!(c.minors[3], 1);
        assert!(!c.is_shredded(3));
        assert!(c.is_shredded(2));
    }

    #[test]
    fn minor_overflow_bumps_major_and_skips_zero() {
        let mut c = CounterBlock::default();
        c.minors[0] = MINOR_MAX;
        c.minors[1] = 50;
        c.minors[2] = MINOR_SHREDDED;
        assert_eq!(c.bump_for_write(0), BumpOutcome::Overflowed);
        assert_eq!(c.major, 1);
        // Live minors reset to 1 (never 0, which is reserved).
        assert_eq!(c.minors[0], MINOR_FIRST);
        assert_eq!(c.minors[1], MINOR_FIRST);
        // Shredded blocks stay shredded.
        assert_eq!(c.minors[2], MINOR_SHREDDED);
    }

    #[test]
    fn block_can_be_written_127_times_before_reencryption() {
        // §4.2: a block can be written back 2^7 = 128 times (minors 0→127
        // exhausted) before the page needs re-encryption.
        let mut c = CounterBlock::default();
        let mut writes = 0;
        while c.bump_for_write(0) == BumpOutcome::Advanced {
            writes += 1;
        }
        assert_eq!(writes, 127);
    }

    #[test]
    fn shred_strategies() {
        let mut base = CounterBlock::default();
        base.minors[0] = 5;
        base.minors[1] = 7;
        base.major = 10;

        let mut opt3 = base;
        assert!(!opt3.shred(ShredStrategy::MajorBumpResetMinors));
        assert_eq!(opt3.major, 11);
        assert!(opt3.fully_shredded());

        let mut opt2 = base;
        assert!(!opt2.shred(ShredStrategy::MajorBumpOnly));
        assert_eq!(opt2.major, 11);
        assert_eq!(opt2.minors[0], 5, "minors untouched");
        assert!(!opt2.is_shredded(0), "option 2 cannot zero-fill");

        let mut opt1 = base;
        assert!(!opt1.shred(ShredStrategy::MinorIncrementAll));
        assert_eq!(opt1.major, 10, "no major bump without overflow");
        assert_eq!(opt1.minors[0], 6);
    }

    #[test]
    fn coalescing_matches_strategy_semantics() {
        assert!(CounterBlock::shred_coalesces(
            ShredStrategy::MajorBumpResetMinors
        ));
        assert!(CounterBlock::shred_coalesces(ShredStrategy::MajorBumpOnly));
        assert!(!CounterBlock::shred_coalesces(
            ShredStrategy::MinorIncrementAll
        ));
    }

    #[test]
    fn minor_increment_strategy_overflows_quickly() {
        let mut c = CounterBlock::default();
        c.minors[0] = MINOR_MAX;
        assert!(c.shred(ShredStrategy::MinorIncrementAll));
        assert_eq!(c.major, 1);
        assert!(c.minors.iter().all(|&m| m == MINOR_FIRST));
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut c = CounterBlock {
            major: 0xDEAD_BEEF_CAFE_F00D,
            minors: [0; BLOCKS_PER_PAGE],
        };
        for (i, m) in c.minors.iter_mut().enumerate() {
            *m = (i as u8 * 3) & MINOR_MAX;
        }
        let line = c.to_line();
        assert_eq!(CounterBlock::from_line(&line), c);
    }

    #[test]
    fn serialisation_roundtrip_extremes() {
        for fill in [MINOR_SHREDDED, MINOR_FIRST, MINOR_MAX] {
            let c = CounterBlock {
                major: u64::MAX,
                minors: [fill; BLOCKS_PER_PAGE],
            };
            assert_eq!(CounterBlock::from_line(&c.to_line()), c);
        }
    }

    #[test]
    fn iv_reflects_counters() {
        let mut c = CounterBlock {
            major: 9,
            ..CounterBlock::default()
        };
        c.minors[7] = 4;
        let iv = c.iv(123, 7);
        assert_eq!(iv.page_id, 123);
        assert_eq!(iv.block, 7);
        assert_eq!(iv.major, 9);
        assert_eq!(iv.minor, 4);
    }
}
