//! Memory-controller configuration.

use ss_common::{Cycles, Error, Result, PAGE_SIZE};
use ss_nvm::{EccConfig, NvmTiming};

use crate::heal::RetryPolicy;

/// How lines are encrypted on their way to NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncryptionMode {
    /// No encryption (vulnerable to remanence attacks; the pre-security
    /// baseline).
    None,
    /// Direct/ECB encryption: secure against casual scanning but leaks
    /// equality and adds decryption latency to the miss path (§2.2).
    Ecb,
    /// Counter-mode encryption (the paper's assumed design).
    Ctr,
}

/// Which memory-protection backend the controller runs
/// (DESIGN.md §15). The backend owns the encrypt-on-write /
/// decrypt-on-read / shred / rescue-remap / recovery-reverify surface
/// behind the [`crate::protection::MemoryProtection`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionMode {
    /// The paper's design: counter-mode AES-CTR with per-page major and
    /// per-block minor counters, shred = major bump + minor reset.
    /// Behaviour is governed by the [`EncryptionMode`] axis exactly as
    /// before the trait existed.
    CounterMode,
    /// Scattered two-share memory (cf. *Secure Scattered Memory*,
    /// arXiv:2402.15824): every line is secret-shared into a
    /// uniform-random share in the data region and an XOR-masked share
    /// in a disjoint mask region. Either share alone is a one-time pad
    /// of nothing; shred = discard the masked share. Requires
    /// `encryption == None` — the split *is* the confidentiality
    /// mechanism.
    ScatteredTwoShare,
}

/// Which §4.2 design option a shred command applies to the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShredStrategy {
    /// Option 1: increment every minor counter. Cheap per shred but burns
    /// through the 7-bit minors and triggers frequent re-encryptions.
    MinorIncrementAll,
    /// Option 2: bump the major counter only. Avoids re-encryption but a
    /// fresh read returns garbage, breaking software that expects zeroed
    /// pages (e.g. glibc rtld's NULL assertions).
    MajorBumpOnly,
    /// Option 3 (the paper's choice): bump the major counter and reset all
    /// minors to the reserved zero, enabling zero-filled reads.
    MajorBumpResetMinors,
}

/// Which persistence domain the controller's volatile persist-path
/// state sits in — the torn-write axis of the crash model (DESIGN.md
/// §13; cf. the eADR mode of *From Ideal to Practice*,
/// arXiv:2307.02050).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistDomain {
    /// ADR: only completed 8-byte stores are durable. A crash can cut an
    /// in-flight multi-step persist sequence after any numbered
    /// [`crate::persist::PersistStep`], tear the 64 B line being written
    /// at the cut, and drops un-drained write-queue entries. The
    /// controller keeps an NVM-resident ordering journal so
    /// [`crate::MemoryController::recover_mut`] can roll the damage
    /// back (or forward) on reboot.
    Adr,
    /// eADR: stored energy flushes the whole controller persist path on
    /// power failure, so every in-flight sequence completes — crashes
    /// land on operation boundaries, 64 B line writes are atomic, the
    /// write queue drains, and no ordering journal is needed. This is
    /// the default and reproduces the pre-crash-model behaviour
    /// byte for byte.
    Eadr,
}

/// How counter-cache contents survive power loss (§4.3, §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterPersistence {
    /// Write-back counter cache with battery backing: dirty counter blocks
    /// are flushed to NVM on power-down. The paper's default.
    BatteryBackedWriteBack,
    /// Write-through: every counter update also writes NVM immediately
    /// (64 B per shredded 4 KiB page — still ~64× cheaper than zeroing).
    WriteThrough,
    /// Write-back with **no** battery: a crash loses dirty counters and
    /// with them the data — modelled so the failure mode can be tested.
    VolatileWriteBack,
}

/// Full controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Bytes of data memory behind the controller (frames × 4 KiB).
    pub data_capacity: u64,
    /// Encryption mode.
    pub encryption: EncryptionMode,
    /// Memory-protection backend. [`ProtectionMode::CounterMode`] (the
    /// default) reproduces the paper's controller byte for byte;
    /// [`ProtectionMode::ScatteredTwoShare`] secret-shares lines across
    /// two NVM regions instead of encrypting them.
    pub protection: ProtectionMode,
    /// Whether the Silent Shredder mechanism (shred command + zero-fill
    /// reads) is enabled. Requires `encryption == Ctr`.
    pub shredder: bool,
    /// Shred strategy (only meaningful when `shredder`).
    pub shred_strategy: ShredStrategy,
    /// Counter-cache capacity in bytes (Table 1: 4 MiB).
    pub counter_cache_bytes: usize,
    /// Counter-cache associativity (8).
    pub counter_cache_ways: usize,
    /// Counter-cache latency (Table 1: 10 cycles).
    pub counter_cache_latency: Cycles,
    /// Counter persistence mode.
    pub counter_persistence: CounterPersistence,
    /// Persistence domain of the controller's volatile persist path
    /// (write queue, in-flight sequences). [`PersistDomain::Eadr`] (the
    /// default) keeps the historical flush-everything-on-power-fail
    /// behaviour; [`PersistDomain::Adr`] enables step-granular crash
    /// cuts, torn 64 B lines, and the ordering journal.
    pub persist_domain: PersistDomain,
    /// Maintain and verify a Merkle tree over the counter region.
    pub integrity: bool,
    /// Latency charged for the XOR of pad and data on the read critical
    /// path (counter mode hides pad generation behind the array access).
    pub xor_latency: Cycles,
    /// Full AES latency charged on the read path in ECB mode (cannot be
    /// overlapped, §2.2).
    pub aes_latency: Cycles,
    /// NVM timing (latencies, channels).
    pub nvm_timing: NvmTiming,
    /// DEUCE-style partial re-encryption on writes (\[43\]).
    pub deuce: bool,
    /// DEUCE epoch interval (full re-encryption every this many writes).
    pub deuce_epoch: u8,
    /// Optional controller write queue with read priority and
    /// forwarding (None = writes go straight to the channels, the
    /// paper's simpler model).
    pub write_queue: Option<crate::wqueue::WriteQueueConfig>,
    /// Start-Gap wear levelling over the data region \[30\].
    pub wear_leveling: bool,
    /// Writes between gap movements when wear levelling is on.
    pub start_gap_interval: u64,
    /// Per-line write-endurance limit forwarded to the NVM device
    /// (accept-write / fail-read: worn lines keep taking writes but grow
    /// weak cells that surface on reads). `None` models pristine media.
    pub endurance_limit: Option<u64>,
    /// ECC strength of the backing NVM (default SECDED).
    pub nvm_ecc: EccConfig,
    /// Transient (soft) read-error probability per bit, forwarded to the
    /// NVM device. 0.0 disables background transients.
    pub transient_read_ber: f64,
    /// Seed of the device's deterministic fault stream (weak-cell
    /// positions and transient arrivals).
    pub nvm_fault_seed: u64,
    /// Spare lines reserved after the counter region for bad-line
    /// remapping. 0 disables remapping: degrading lines go straight to
    /// quarantine.
    pub spare_lines: u64,
    /// Read-retry policy for transient uncorrectable ECC errors.
    pub retry: RetryPolicy,
    /// Background read scrubber: visit one data line every this many
    /// demand writes, when the write path is idle. `None` disables
    /// scrubbing.
    pub scrub_interval: Option<u64>,
    /// AES-128 processor key.
    pub key: [u8; 16],
    /// Event-trace ring depth. `None` (the default) disables tracing
    /// entirely — the emit path reduces to one discriminant test and no
    /// event is ever constructed. `Some(n)` retains the last `n` events.
    pub trace_depth: Option<usize>,
}

impl Default for ControllerConfig {
    /// The paper's secure controller with Silent Shredder on, scaled to
    /// 1 GiB of data memory (the full 16 GiB of Table 1 is unnecessary
    /// for the reproduced experiments; see DESIGN.md on scaling).
    fn default() -> Self {
        ControllerConfig {
            data_capacity: 1 << 30,
            encryption: EncryptionMode::Ctr,
            protection: ProtectionMode::CounterMode,
            shredder: true,
            shred_strategy: ShredStrategy::MajorBumpResetMinors,
            counter_cache_bytes: 4 << 20,
            counter_cache_ways: 8,
            counter_cache_latency: Cycles::new(10),
            counter_persistence: CounterPersistence::BatteryBackedWriteBack,
            persist_domain: PersistDomain::Eadr,
            integrity: true,
            xor_latency: Cycles::new(2),
            aes_latency: Cycles::new(40),
            nvm_timing: NvmTiming::default(),
            deuce: false,
            deuce_epoch: 16,
            write_queue: None,
            wear_leveling: false,
            start_gap_interval: 64,
            endurance_limit: None,
            nvm_ecc: EccConfig::secded(),
            transient_read_ber: 0.0,
            nvm_fault_seed: 0,
            spare_lines: 32,
            retry: RetryPolicy::default(),
            scrub_interval: None,
            key: *b"silent-shredder!",
            trace_depth: None,
        }
    }
}

impl ControllerConfig {
    /// A tiny configuration for unit tests and doc examples: 1 MiB of
    /// data, 16 KiB counter cache.
    pub fn small_test() -> Self {
        ControllerConfig {
            data_capacity: 1 << 20,
            counter_cache_bytes: 16 << 10,
            ..ControllerConfig::default()
        }
    }

    /// The evaluation baseline: counter-mode encryption *without* the
    /// shredder (shredding must be done by writing zeros).
    pub fn encrypted_baseline() -> Self {
        ControllerConfig {
            shredder: false,
            ..ControllerConfig::default()
        }
    }

    /// An unencrypted controller (for motivation experiments and attack
    /// demonstrations).
    pub fn plain() -> Self {
        ControllerConfig {
            encryption: EncryptionMode::None,
            shredder: false,
            integrity: false,
            ..ControllerConfig::default()
        }
    }

    /// The scattered two-share backend: lines are secret-shared across
    /// two NVM regions, shred = discard the masked share. Keeps the
    /// shred command and liveness-metadata integrity on; encryption is
    /// `None` because the split is the confidentiality mechanism.
    pub fn scattered() -> Self {
        ControllerConfig {
            protection: ProtectionMode::ScatteredTwoShare,
            encryption: EncryptionMode::None,
            shredder: true,
            ..ControllerConfig::default()
        }
    }

    /// Starts a validating [`ControllerConfigBuilder`] seeded with the
    /// default (paper) configuration.
    pub fn builder() -> ControllerConfigBuilder {
        ControllerConfigBuilder::new()
    }

    /// Continues this configuration in a validating builder.
    pub fn into_builder(self) -> ControllerConfigBuilder {
        ControllerConfigBuilder { cfg: self }
    }

    /// Number of 4 KiB frames of data memory.
    pub fn frames(&self) -> u64 {
        self.data_capacity / PAGE_SIZE as u64
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the shredder is enabled
    /// without counter mode, the capacity is not page-aligned or zero, or
    /// DEUCE is combined with a non-CTR mode.
    pub fn validate(&self) -> Result<()> {
        if self.data_capacity == 0 || !self.data_capacity.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Error::InvalidConfig {
                detail: format!("data capacity {} not page aligned", self.data_capacity),
            });
        }
        if self.protection == ProtectionMode::ScatteredTwoShare {
            // The scattered backend's share split is the confidentiality
            // mechanism; the counter-mode axes it replaces must be off,
            // and the machinery it has no share-consistent story for
            // (DEUCE chunk metadata, write-queue coalescing, Start-Gap
            // moves) is rejected at this single choke point.
            if self.encryption != EncryptionMode::None {
                return Err(Error::InvalidConfig {
                    detail: "scattered two-share mode replaces encryption; set encryption to None"
                        .into(),
                });
            }
            if self.shredder && self.shred_strategy != ShredStrategy::MajorBumpResetMinors {
                return Err(Error::InvalidConfig {
                    detail: "scattered shredding requires the major-bump-reset-minors strategy"
                        .into(),
                });
            }
            if self.deuce {
                return Err(Error::InvalidConfig {
                    detail: "DEUCE partial re-encryption does not apply to scattered shares".into(),
                });
            }
            if self.write_queue.is_some() {
                return Err(Error::InvalidConfig {
                    detail: "scattered two-share mode does not support the write queue".into(),
                });
            }
            if self.wear_leveling {
                return Err(Error::InvalidConfig {
                    detail: "Start-Gap wear levelling does not cover the scattered mask region"
                        .into(),
                });
            }
        }
        if self.protection == ProtectionMode::CounterMode
            && self.shredder
            && self.encryption != EncryptionMode::Ctr
        {
            return Err(Error::InvalidConfig {
                detail: "silent shredder requires counter-mode encryption".into(),
            });
        }
        if self.deuce && self.encryption != EncryptionMode::Ctr {
            return Err(Error::InvalidConfig {
                detail: "deuce requires counter-mode encryption".into(),
            });
        }
        if self.deuce_epoch == 0 {
            return Err(Error::InvalidConfig {
                detail: "deuce epoch must be positive".into(),
            });
        }
        if let Some(wq) = &self.write_queue {
            if !wq.is_valid() {
                return Err(Error::InvalidConfig {
                    detail: "invalid write-queue watermarks".into(),
                });
            }
        }
        if self.persist_domain == PersistDomain::Adr {
            // Combinations the ordering journal cannot keep
            // crash-consistent (DESIGN.md §13): counter-mode writes bump
            // counters at enqueue time, so an ADR-volatile queue would
            // drop ciphertext whose counters already advanced; DEUCE
            // chunk metadata and Start-Gap moves mutate mapping state
            // with no journaled pre-image.
            if self.write_queue.is_some() && self.encryption == EncryptionMode::Ctr {
                return Err(Error::InvalidConfig {
                    detail: "ADR domain cannot cover an encrypted (counter-mode) write queue; \
                             use eADR or drop the queue"
                        .into(),
                });
            }
            if self.deuce {
                return Err(Error::InvalidConfig {
                    detail: "DEUCE chunk metadata is not covered by the ADR ordering journal"
                        .into(),
                });
            }
            if self.wear_leveling {
                return Err(Error::InvalidConfig {
                    detail: "Start-Gap moves are not covered by the ADR ordering journal".into(),
                });
            }
        }
        if self.wear_leveling && self.start_gap_interval == 0 {
            return Err(Error::InvalidConfig {
                detail: "start-gap interval must be positive".into(),
            });
        }
        if !self.nvm_ecc.is_valid() {
            return Err(Error::InvalidConfig {
                detail: "ecc correct bound must not exceed detect bound".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.transient_read_ber) {
            return Err(Error::InvalidConfig {
                detail: format!(
                    "transient read BER {} not in [0, 1]",
                    self.transient_read_ber
                ),
            });
        }
        if self.endurance_limit == Some(0) {
            return Err(Error::InvalidConfig {
                detail: "endurance limit must be positive when set".into(),
            });
        }
        if self.scrub_interval == Some(0) {
            return Err(Error::InvalidConfig {
                detail: "scrub interval must be positive when set".into(),
            });
        }
        if self.trace_depth == Some(0) {
            return Err(Error::InvalidConfig {
                detail: "trace depth must be positive when set".into(),
            });
        }
        Ok(())
    }
}

/// Configuration of a sharded (multi-channel) controller: `shards`
/// independent controller instances behind one facade, plus the batched
/// shred command queue drained through [`crate::mmio::SHRED_DRAIN_REG`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConfig {
    /// Number of shards (independent channels). 1 reproduces the plain
    /// controller exactly.
    pub shards: u32,
    /// Capacity of the MMIO shred command queue in pages. Enqueues past
    /// this mark report back-pressure so the kernel drains early.
    pub shred_queue_capacity: usize,
    /// The controller configuration being sharded. `data_capacity` is
    /// the *total* across shards; per-shard resources (counter cache,
    /// spare pool, write queue) are per-channel silicon and are
    /// replicated into every shard unchanged.
    pub base: ControllerConfig,
}

/// Decorrelates per-shard fault streams: shard `i` seeds its NVM device
/// with `base_seed ^ i * SHARD_SEED_STRIDE`. Shard 0 keeps the base seed
/// untouched so a 1-shard controller is bit-identical to the unsharded
/// one.
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

impl ShardedConfig {
    /// Wraps `base` with `shards` channels and a default queue depth.
    pub fn new(shards: u32, base: ControllerConfig) -> Self {
        ShardedConfig {
            shards,
            shred_queue_capacity: 4096,
            base,
        }
    }

    /// Frames of data memory owned by each shard.
    pub fn frames_per_shard(&self) -> u64 {
        self.base.frames() / u64::from(self.shards.max(1))
    }

    /// The configuration of shard `shard`: the capacity slice plus a
    /// decorrelated fault seed.
    pub fn shard_config(&self, shard: u32) -> ControllerConfig {
        ControllerConfig {
            data_capacity: self.base.data_capacity / u64::from(self.shards.max(1)),
            nvm_fault_seed: self.base.nvm_fault_seed
                ^ u64::from(shard).wrapping_mul(SHARD_SEED_STRIDE),
            ..self.base.clone()
        }
    }

    /// Validates the sharding parameters and the base configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when there are zero shards, the
    /// queue has no capacity, the frame count does not divide evenly
    /// across shards, or the base configuration is itself invalid.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::InvalidConfig {
                detail: "sharded controller needs at least one shard".into(),
            });
        }
        if self.shred_queue_capacity == 0 {
            return Err(Error::InvalidConfig {
                detail: "shred queue capacity must be positive".into(),
            });
        }
        self.base.validate()?;
        if !self.base.frames().is_multiple_of(u64::from(self.shards)) {
            return Err(Error::InvalidConfig {
                detail: format!(
                    "{} frames do not divide evenly across {} shards",
                    self.base.frames(),
                    self.shards
                ),
            });
        }
        Ok(())
    }
}

/// Validating builder for [`ControllerConfig`] — the one construction
/// choke point that rejects invalid axis combinations (scattered +
/// DEUCE, ADR-incompatible sets, …) before a controller ever sees them.
///
/// Starts from the paper's default configuration (or a preset) and
/// chains setters; [`ControllerConfigBuilder::build`] runs
/// [`ControllerConfig::validate`] and only then releases the config.
///
/// # Examples
///
/// ```
/// use ss_core::{ControllerConfig, ProtectionMode};
///
/// let cfg = ControllerConfig::builder()
///     .data_capacity(1 << 20)
///     .counter_cache_bytes(16 << 10)
///     .protection(ProtectionMode::ScatteredTwoShare)
///     .encryption(ss_core::EncryptionMode::None)
///     .build()
///     .expect("valid scattered config");
/// assert!(cfg.shredder);
/// ```
#[derive(Debug, Clone)]
pub struct ControllerConfigBuilder {
    cfg: ControllerConfig,
}

impl Default for ControllerConfigBuilder {
    fn default() -> Self {
        ControllerConfigBuilder::new()
    }
}

impl ControllerConfigBuilder {
    /// A builder seeded with [`ControllerConfig::default`].
    pub fn new() -> Self {
        ControllerConfigBuilder {
            cfg: ControllerConfig::default(),
        }
    }

    /// A builder seeded with [`ControllerConfig::small_test`].
    pub fn small_test() -> Self {
        ControllerConfig::small_test().into_builder()
    }

    /// A builder seeded with [`ControllerConfig::plain`].
    pub fn plain() -> Self {
        ControllerConfig::plain().into_builder()
    }

    /// A builder seeded with [`ControllerConfig::encrypted_baseline`].
    pub fn encrypted_baseline() -> Self {
        ControllerConfig::encrypted_baseline().into_builder()
    }

    /// A builder seeded with [`ControllerConfig::scattered`].
    pub fn scattered() -> Self {
        ControllerConfig::scattered().into_builder()
    }

    /// Sets the data capacity in bytes.
    pub fn data_capacity(mut self, bytes: u64) -> Self {
        self.cfg.data_capacity = bytes;
        self
    }

    /// Sets the encryption mode.
    pub fn encryption(mut self, mode: EncryptionMode) -> Self {
        self.cfg.encryption = mode;
        self
    }

    /// Selects the memory-protection backend.
    pub fn protection(mut self, mode: ProtectionMode) -> Self {
        self.cfg.protection = mode;
        self
    }

    /// Enables or disables the shred command.
    pub fn shredder(mut self, on: bool) -> Self {
        self.cfg.shredder = on;
        self
    }

    /// Sets the shred strategy.
    pub fn shred_strategy(mut self, strategy: ShredStrategy) -> Self {
        self.cfg.shred_strategy = strategy;
        self
    }

    /// Sets the counter-cache capacity in bytes.
    pub fn counter_cache_bytes(mut self, bytes: usize) -> Self {
        self.cfg.counter_cache_bytes = bytes;
        self
    }

    /// Sets the counter-persistence mode.
    pub fn counter_persistence(mut self, mode: CounterPersistence) -> Self {
        self.cfg.counter_persistence = mode;
        self
    }

    /// Sets the persistence domain of the controller persist path.
    pub fn persist_domain(mut self, domain: PersistDomain) -> Self {
        self.cfg.persist_domain = domain;
        self
    }

    /// Enables or disables the counter-region integrity tree.
    pub fn integrity(mut self, on: bool) -> Self {
        self.cfg.integrity = on;
        self
    }

    /// Enables or disables DEUCE partial re-encryption.
    pub fn deuce(mut self, on: bool) -> Self {
        self.cfg.deuce = on;
        self
    }

    /// Sets the DEUCE epoch length in writes.
    pub fn deuce_epoch(mut self, epoch: u8) -> Self {
        self.cfg.deuce_epoch = epoch;
        self
    }

    /// Installs (or removes) the controller write queue.
    pub fn write_queue(mut self, wq: Option<crate::wqueue::WriteQueueConfig>) -> Self {
        self.cfg.write_queue = wq;
        self
    }

    /// Enables or disables Start-Gap wear levelling.
    pub fn wear_leveling(mut self, on: bool) -> Self {
        self.cfg.wear_leveling = on;
        self
    }

    /// Sets the start-gap rotation interval (writes per gap move).
    pub fn start_gap_interval(mut self, interval: u64) -> Self {
        self.cfg.start_gap_interval = interval;
        self
    }

    /// Sets the per-line endurance limit of the backing NVM.
    pub fn endurance_limit(mut self, limit: Option<u64>) -> Self {
        self.cfg.endurance_limit = limit;
        self
    }

    /// Sets the ECC strength of the backing NVM.
    pub fn nvm_ecc(mut self, ecc: EccConfig) -> Self {
        self.cfg.nvm_ecc = ecc;
        self
    }

    /// Sets the transient read bit-error rate of the backing NVM.
    pub fn transient_read_ber(mut self, ber: f64) -> Self {
        self.cfg.transient_read_ber = ber;
        self
    }

    /// Seeds the device's deterministic fault stream.
    pub fn nvm_fault_seed(mut self, seed: u64) -> Self {
        self.cfg.nvm_fault_seed = seed;
        self
    }

    /// Reserves spare lines for bad-line remapping.
    pub fn spare_lines(mut self, lines: u64) -> Self {
        self.cfg.spare_lines = lines;
        self
    }

    /// Sets the background scrub interval (demand writes per step).
    pub fn scrub_interval(mut self, interval: Option<u64>) -> Self {
        self.cfg.scrub_interval = interval;
        self
    }

    /// Sets the event-trace ring depth.
    pub fn trace_depth(mut self, depth: Option<usize>) -> Self {
        self.cfg.trace_depth = depth;
        self
    }

    /// Validates and releases the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for any combination
    /// [`ControllerConfig::validate`] rejects.
    pub fn build(self) -> Result<ControllerConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Validating builder for [`ShardedConfig`], mirroring
/// [`ControllerConfigBuilder`] for the multi-channel facade.
#[derive(Debug, Clone)]
pub struct ShardedConfigBuilder {
    cfg: ShardedConfig,
}

impl ShardedConfigBuilder {
    /// A builder for `shards` channels over `base`.
    pub fn new(shards: u32, base: ControllerConfig) -> Self {
        ShardedConfigBuilder {
            cfg: ShardedConfig::new(shards, base),
        }
    }

    /// Sets the MMIO shred-queue capacity in pages.
    pub fn shred_queue_capacity(mut self, pages: usize) -> Self {
        self.cfg.shred_queue_capacity = pages;
        self
    }

    /// Validates and releases the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for anything
    /// [`ShardedConfig::validate`] rejects.
    pub fn build(self) -> Result<ShardedConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl ShardedConfig {
    /// Starts a validating [`ShardedConfigBuilder`].
    pub fn builder(shards: u32, base: ControllerConfig) -> ShardedConfigBuilder {
        ShardedConfigBuilder::new(shards, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_shredder() {
        let c = ControllerConfig::default();
        assert!(c.validate().is_ok());
        assert!(c.shredder);
        assert_eq!(c.encryption, EncryptionMode::Ctr);
        assert_eq!(c.counter_cache_bytes, 4 << 20);
    }

    #[test]
    fn presets_are_valid() {
        assert!(ControllerConfig::small_test().validate().is_ok());
        assert!(ControllerConfig::encrypted_baseline().validate().is_ok());
        assert!(ControllerConfig::plain().validate().is_ok());
    }

    #[test]
    fn shredder_requires_ctr() {
        let c = ControllerConfig {
            encryption: EncryptionMode::Ecb,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn unaligned_capacity_rejected() {
        let c = ControllerConfig {
            data_capacity: 4097,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
        let c0 = ControllerConfig {
            data_capacity: 0,
            ..ControllerConfig::default()
        };
        assert!(c0.validate().is_err());
    }

    #[test]
    fn frames_computed() {
        assert_eq!(ControllerConfig::small_test().frames(), 256);
    }

    #[test]
    fn sharded_config_validates_and_slices() {
        let sc = ShardedConfig::new(4, ControllerConfig::small_test());
        assert!(sc.validate().is_ok());
        assert_eq!(sc.frames_per_shard(), 64);
        let s0 = sc.shard_config(0);
        assert_eq!(s0.data_capacity, (1 << 20) / 4);
        // Shard 0 keeps the base fault seed (1-shard equivalence).
        assert_eq!(s0.nvm_fault_seed, sc.base.nvm_fault_seed);
        assert_ne!(sc.shard_config(1).nvm_fault_seed, s0.nvm_fault_seed);

        assert!(ShardedConfig::new(0, ControllerConfig::small_test())
            .validate()
            .is_err());
        let mut zero_q = ShardedConfig::new(2, ControllerConfig::small_test());
        zero_q.shred_queue_capacity = 0;
        assert!(zero_q.validate().is_err());
        // 256 frames do not split across 3 shards.
        assert!(ShardedConfig::new(3, ControllerConfig::small_test())
            .validate()
            .is_err());
    }

    #[test]
    fn healing_fields_validated() {
        let bad_ecc = ControllerConfig {
            nvm_ecc: EccConfig::strength(4, 2),
            ..ControllerConfig::small_test()
        };
        assert!(bad_ecc.validate().is_err());
        let bad_ber = ControllerConfig {
            transient_read_ber: 1.5,
            ..ControllerConfig::small_test()
        };
        assert!(bad_ber.validate().is_err());
        let zero_limit = ControllerConfig {
            endurance_limit: Some(0),
            ..ControllerConfig::small_test()
        };
        assert!(zero_limit.validate().is_err());
        let zero_scrub = ControllerConfig {
            scrub_interval: Some(0),
            ..ControllerConfig::small_test()
        };
        assert!(zero_scrub.validate().is_err());
        let zero_trace = ControllerConfig {
            trace_depth: Some(0),
            ..ControllerConfig::small_test()
        };
        assert!(zero_trace.validate().is_err());
        let good = ControllerConfig {
            endurance_limit: Some(256),
            transient_read_ber: 1e-4,
            spare_lines: 64,
            scrub_interval: Some(32),
            ..ControllerConfig::small_test()
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn scattered_preset_is_valid_and_axes_are_rejected() {
        let s = ControllerConfig::scattered();
        assert!(s.validate().is_ok());
        assert_eq!(s.protection, ProtectionMode::ScatteredTwoShare);
        assert_eq!(s.encryption, EncryptionMode::None);
        assert!(s.shredder);

        // Scattered replaces encryption entirely.
        for mode in [EncryptionMode::Ecb, EncryptionMode::Ctr] {
            let bad = ControllerConfig {
                encryption: mode,
                ..ControllerConfig::scattered()
            };
            assert!(bad.validate().is_err(), "{mode:?} must be rejected");
        }
        // Only the major-bump-reset-minors strategy keeps the liveness
        // metadata shred-consistent.
        let bad_strategy = ControllerConfig {
            shred_strategy: ShredStrategy::MajorBumpOnly,
            ..ControllerConfig::scattered()
        };
        assert!(bad_strategy.validate().is_err());
        // DEUCE, the write queue, and Start-Gap have no share story.
        let deuce = ControllerConfig {
            deuce: true,
            ..ControllerConfig::scattered()
        };
        assert!(deuce.validate().is_err());
        let wq = ControllerConfig {
            write_queue: Some(crate::wqueue::WriteQueueConfig::default()),
            ..ControllerConfig::scattered()
        };
        assert!(wq.validate().is_err());
        let wl = ControllerConfig {
            wear_leveling: true,
            ..ControllerConfig::scattered()
        };
        assert!(wl.validate().is_err());
        // ADR + scattered is a supported crash-model point.
        let adr = ControllerConfig {
            persist_domain: PersistDomain::Adr,
            counter_persistence: CounterPersistence::WriteThrough,
            ..ControllerConfig::scattered()
        };
        assert!(adr.validate().is_ok());
    }

    #[test]
    fn builder_validates_at_build_time() {
        let cfg = ControllerConfigBuilder::small_test()
            .protection(ProtectionMode::ScatteredTwoShare)
            .encryption(EncryptionMode::None)
            .spare_lines(8)
            .build()
            .unwrap();
        assert_eq!(cfg.protection, ProtectionMode::ScatteredTwoShare);
        assert_eq!(cfg.spare_lines, 8);

        // The invalid combo is caught at the single choke point.
        assert!(ControllerConfigBuilder::small_test()
            .protection(ProtectionMode::ScatteredTwoShare)
            .build()
            .is_err());
        assert!(ControllerConfigBuilder::scattered()
            .deuce(true)
            .build()
            .is_err());

        let sharded = ShardedConfig::builder(4, ControllerConfig::small_test())
            .shred_queue_capacity(64)
            .build()
            .unwrap();
        assert_eq!(sharded.shred_queue_capacity, 64);
        assert!(ShardedConfig::builder(3, ControllerConfig::small_test())
            .build()
            .is_err());
    }
}
