//! **silent-shredder** — a from-scratch Rust reproduction of
//! *"Silent Shredder: Zero-Cost Shredding for Secure Non-Volatile Main
//! Memory Controllers"* (Awad, Manadhata, Haber, Solihin, Horne —
//! ASPLOS 2016).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `ss-common` | addresses, cycles, stats, PRNG |
//! | [`crypto`] | `ss-crypto` | AES-128, counter mode, IVs, SHA-256, Merkle tree |
//! | [`nvm`] | `ss-nvm` | PCM-like device: timing, endurance, energy, remanence |
//! | [`cache`] | `ss-cache` | set-associative caches, 4-level coherent hierarchy |
//! | [`core`] | `ss-core` | **the Silent Shredder secure NVMM controller** |
//! | [`cpu`] | `ss-cpu` | in-order multicore model, IPC accounting |
//! | [`os`] | `ss-os` | simulated kernel & hypervisor (faults, shredding, ballooning) |
//! | [`workloads`] | `ss-workloads` | SPEC-like models, PowerGraph-like graph apps |
//! | [`sim`] | `ss-sim` | the full-system simulator |
//!
//! # Quickstart
//!
//! ```
//! use silent_shredder::sim::{System, SystemConfig};
//! use silent_shredder::cpu::Op;
//!
//! // Boot a Silent Shredder machine and run a process that touches a
//! // freshly allocated page: the kernel shreds the frame for free, and
//! // reading an untouched line zero-fills without going to NVM.
//! let mut system = System::new(SystemConfig::small_test(true))?;
//! let pid = system.spawn_process(0)?;
//! let heap = system.sys_alloc(pid, 4096)?;
//! system.run(
//!     vec![vec![Op::StoreLine(heap), Op::Load(heap.add(512))].into_iter()],
//!     None,
//! );
//! let stats = &system.hardware().controller.inspect().stats().mem;
//! assert_eq!(stats.zeroing_writes.get(), 0);
//! # Ok::<(), silent_shredder::common::Error>(())
//! ```
//!
//! See `examples/` for runnable scenarios, `crates/bench/src/bin/repro.rs`
//! for the figure/table reproduction harness, and DESIGN.md /
//! EXPERIMENTS.md for methodology.

#![forbid(unsafe_code)]

pub use ss_cache as cache;
pub use ss_common as common;
pub use ss_core as core;
pub use ss_cpu as cpu;
pub use ss_crypto as crypto;
pub use ss_nvm as nvm;
pub use ss_os as os;
pub use ss_sim as sim;
pub use ss_workloads as workloads;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use ss_common::{BlockAddr, Cycles, Error, PageId, PhysAddr, Result, VirtAddr};
    pub use ss_core::{
        ControllerConfig, ControllerConfigBuilder, MemoryController, ProtectionMode, ShredStrategy,
    };
    pub use ss_cpu::Op;
    pub use ss_os::{Kernel, KernelConfig, ZeroStrategy};
    pub use ss_sim::{System, SystemConfig};
    pub use ss_workloads::{GraphApp, GraphWorkload, SpecWorkload, Workload};
}
